"""Declarative workload specs and the scenario registry.

A :class:`Scenario` is everything needed to replay a workload from one
integer seed: the clustered-topology parameters, the probe-noise model, the
member/target sampling policy, the query protocol and the trial count.
Scenarios are frozen dataclasses — picklable, so the engine can ship them to
worker processes — and live in a process-wide registry keyed by name, so a
new workload (skewed targets, denser clusters, noisier probes) is one
dataclass away.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, replace

import numpy as np

from repro.latency.builder import ClusteredWorld
from repro.topology.clustered import ClusteredConfig
from repro.topology.oracle import LatencyOracle, NoisyOracle
from repro.util.errors import ConfigurationError
from repro.util.rng import spawn_seeds
from repro.util.validate import require_in_range, require_positive

#: Query protocols.  ``sampled`` is the Meridian Section 4 protocol: draw
#: ``n_queries`` targets with replacement from the target pool, threading
#: one rng through build and queries.  ``per-target`` is the head-to-head
#: comparison protocol: query each target exactly once, in sampling order,
#: seeding each query with the target id (common random numbers across
#: schemes).  ``churn`` is the dynamic-membership protocol: the same
#: sampled-query discipline with membership events (join/leave, see
#: :class:`ChurnSpec`) interleaved between queries from the same seeded
#: stream, and correctness scored against the membership at query time.
#: ``service`` is long-running service mode: one built algorithm stays
#: alive across a sequence of churn phases (:class:`ServicePhase`), with
#: warm restarts between phases and one :class:`TrialRecord` per phase.
#: ``daemon`` is simulated-time service: Poisson query arrivals, per-node
#: concurrency caps with FIFO queueing, membership events and continuous
#: Meridian ring repair all interleaved on one netsim event loop, with
#: time-to-answer percentiles as the headline metric (:class:`DaemonSpec`,
#: :class:`repro.service.daemon.QueryDaemon`).
PROTOCOLS = ("sampled", "per-target", "churn", "service", "daemon")

#: Target-sampling policies understood by :class:`SamplingSpec`.
SAMPLING_POLICIES = ("uniform", "skewed", "single-cluster")


@dataclass(frozen=True)
class NoiseSpec:
    """Probe-noise model: lognormal factor plus exponential additive lag.

    ``seed=None`` reuses the trial's world seed, so one integer still
    replays the whole trial.

    The wrapped :class:`NoisyOracle` serves batched probes
    (``latencies_from`` / ``latency_block``) by drawing noise per-batch
    from the same generator as scalar probes: all lognormal factors in one
    vectorised draw, then (for ``additive_ms > 0``) all additive lags.
    With ``additive_ms == 0`` a batch is bit-identical to the equivalent
    scalar probe loop; with additive lag the draw order differs from the
    interleaved scalar stream (see
    :class:`repro.topology.oracle.NoisyOracle`).
    """

    sigma: float = 0.05
    additive_ms: float = 0.0
    seed: int | None = None

    def wrap(
        self,
        oracle: LatencyOracle,
        default_seed: int | np.random.Generator | None,
    ) -> NoisyOracle:
        """Wrap ``oracle`` in the configured :class:`NoisyOracle`.

        With an *integer* ``default_seed`` the noise gets its own
        generator, independent of the trial's other streams.  Passing a
        ``Generator`` shares that generator with the caller (noise draws
        then interleave with sampling/build/query draws) — use integer
        seeds when stream independence matters.
        """
        return NoisyOracle(
            oracle,
            sigma=self.sigma,
            additive_ms=self.additive_ms,
            seed=self.seed if self.seed is not None else default_seed,
        )


@dataclass(frozen=True)
class SamplingSpec:
    """How targets are drawn from a world's population.

    Members are always the complement of the target set — targets must not
    be members, or "nearest member" degenerates to the target itself.
    """

    n_targets: int = 100
    policy: str = "uniform"
    #: Zipf exponent for the ``skewed`` policy: cluster ``c`` gets weight
    #: ``(c + 1) ** -skew``, modelling workloads where query load piles onto
    #: a few popular clusters.
    skew: float = 1.0
    #: Cluster id for the ``single-cluster`` policy.
    cluster: int = 0

    def __post_init__(self) -> None:
        require_positive(self.n_targets, "n_targets")
        if self.policy not in SAMPLING_POLICIES:
            raise ConfigurationError(
                f"unknown sampling policy {self.policy!r}; "
                f"choose from {SAMPLING_POLICIES}"
            )

    def sample(self, world: ClusteredWorld, rng: np.random.Generator) -> np.ndarray:
        """Draw the target ids (without replacement) for one trial."""
        topology = world.topology
        n = topology.n_nodes
        if self.policy == "single-cluster":
            pool = topology.hosts_in_cluster(self.cluster)
        else:
            pool = np.arange(n)
        if self.n_targets >= pool.size:
            raise ConfigurationError(
                f"n_targets={self.n_targets} must be < candidate pool {pool.size}"
            )
        if self.policy == "skewed":
            weights = (topology.host_cluster[pool] + 1.0) ** -self.skew
            weights /= weights.sum()
            return rng.choice(pool, size=self.n_targets, replace=False, p=weights)
        return rng.choice(pool, size=self.n_targets, replace=False)


@dataclass(frozen=True)
class ChurnSpec:
    """Membership dynamics for the ``churn`` protocol.

    Time is measured in query steps.  Before each query the engine applies
    one event step: ``Poisson(departure_rate)`` uniformly random members
    leave, every arrival whose session expired leaves, and
    ``Poisson(arrival_rate)`` standby nodes join.  Arrivals draw their
    session length from an exponential distribution with mean
    ``session_length`` query steps (``None`` keeps arrivals in until the
    random-departure process picks them).  ``warmup_steps`` event steps run
    before the first query so measurements start from churned state rather
    than a fresh build; their maintenance cost is reported separately
    (:attr:`~repro.harness.results.TrialRecord.warmup_maintenance_probes`).

    The membership never drops below ``min_members`` (departures are capped
    at the floor) and never exceeds the scenario's member pool (arrivals
    are capped by standby supply).  Everything is drawn from the one
    seeded trial stream, so a churn trial replays from one integer exactly
    like the static protocols.

    ``events_per_query`` decouples the event rate from the query rate:
    each query is preceded by that many event steps (default 1, the
    historical behaviour), so a high-event-rate / sparse-query workload —
    the regime where deferred maintenance disciplines win — is one knob
    away.  ``warmup_steps`` and ``session_length`` are measured in *event
    steps* on the same clock.
    """

    #: Fraction of the member pool alive at build time; the rest form the
    #: standby pool arrivals draw from.
    initial_fraction: float = 0.7
    arrival_rate: float = 0.5
    departure_rate: float = 0.5
    session_length: float | None = None
    warmup_steps: int = 0
    min_members: int = 24
    #: Event steps applied before each query (the event:query rate ratio).
    events_per_query: int = 1

    def __post_init__(self) -> None:
        require_in_range(self.initial_fraction, "initial_fraction", 0.0, 1.0)
        if self.arrival_rate < 0:
            raise ConfigurationError(
                f"arrival_rate must be >= 0, got {self.arrival_rate}"
            )
        if self.departure_rate < 0:
            raise ConfigurationError(
                f"departure_rate must be >= 0, got {self.departure_rate}"
            )
        if self.session_length is not None:
            require_positive(self.session_length, "session_length")
        if self.warmup_steps < 0:
            raise ConfigurationError(
                f"warmup_steps must be >= 0, got {self.warmup_steps}"
            )
        if self.min_members < 2:
            raise ConfigurationError(
                f"min_members must be >= 2, got {self.min_members}"
            )
        require_positive(self.events_per_query, "events_per_query")


@dataclass(frozen=True)
class ServicePhase:
    """One phase of a long-running ``service`` trial.

    A service trial keeps one built algorithm alive across its phases
    (warm restarts: the index carries over, no rebuild).  Each phase runs
    ``churn.warmup_steps`` event-only transition steps followed by
    ``n_queries`` interleaved event+query steps under its own churn
    dynamics, and yields its own
    :class:`~repro.harness.results.TrialRecord` (tagged with ``name``).
    The first phase's ``initial_fraction`` seeds the session's initial
    membership split; later phases inherit the live membership.
    """

    name: str
    churn: ChurnSpec
    n_queries: int = 100

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a service phase needs a name")
        require_positive(self.n_queries, "n_queries")


@dataclass(frozen=True)
class FaultSpec:
    """Declarative network-fault configuration for the ``daemon`` protocol.

    Describes the broken-network layer
    (:class:`~repro.netsim.network.FaultModel`) in workload terms: loss
    rates by link class, a NAT-ed fraction, scheduled outage windows and
    a clock-skew spread.  :meth:`build_model` materialises the model for
    one trial's topology from a *dedicated* fault stream — so attaching
    faults never perturbs the workload or algorithm draws, and the same
    fault layout replays across schemes (common random numbers).

    ``deadline_ms`` is a scoring knob, not a mechanism: availability is
    the fraction of queries answered within it.  An all-zero spec builds
    an *inert* model (``active == False``) — the daemon then runs the
    exact fault-free code path, bit for bit (the zero-fault identity
    tests pin this).
    """

    #: Loss probability applied to every src/dst cluster pair.
    base_loss_rate: float = 0.0
    #: Override for same-cluster links (``None`` keeps the base rate).
    intra_cluster_loss_rate: float | None = None
    #: Override for cross-cluster links (``None`` keeps the base rate).
    cross_cluster_loss_rate: float | None = None
    #: Fraction of hosts behind NATs (probed only via their relay).
    nat_fraction: float = 0.0
    #: ``(start_ms, end_ms, clusters)`` regional outage windows.
    outages: tuple = ()
    #: Half-width of the uniform per-node clock-skew factor around 1.0.
    clock_skew: float = 0.0
    probe_timeout_ms: float = 400.0
    max_retransmits: int = 2
    retransmit_backoff: float = 2.0
    query_retry_ms: float = 200.0
    query_retry_backoff: float = 2.0
    #: Availability deadline: a query answered later counts unavailable.
    deadline_ms: float = float("inf")
    #: Dedicated fault-stream seed; ``None`` derives it from the trial
    #: seed (same faults per trial, independent of every other stream).
    seed: int | None = None

    def __post_init__(self) -> None:
        for name in (
            "base_loss_rate",
            "intra_cluster_loss_rate",
            "cross_cluster_loss_rate",
        ):
            value = getattr(self, name)
            if value is not None and not 0.0 <= value < 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1), got {value}"
                )
        require_in_range(self.nat_fraction, "nat_fraction", 0.0, 1.0)
        require_in_range(self.clock_skew, "clock_skew", 0.0, 1.0)
        require_positive(self.probe_timeout_ms, "probe_timeout_ms")
        require_positive(self.query_retry_ms, "query_retry_ms")
        require_positive(self.deadline_ms, "deadline_ms")
        if self.max_retransmits < 0:
            raise ConfigurationError(
                f"max_retransmits must be >= 0, got {self.max_retransmits}"
            )
        if self.retransmit_backoff < 1.0 or self.query_retry_backoff < 1.0:
            raise ConfigurationError("backoff factors must be >= 1")
        for window in self.outages:
            start, end, _clusters = window
            if not 0.0 <= float(start) < float(end):
                raise ConfigurationError(f"bad outage window {window!r}")

    def build_model(
        self, host_cluster: np.ndarray, rng: np.random.Generator
    ) -> "FaultModel":
        """Materialise the fault model for one trial's topology.

        Draw order (pinned by the determinism tests): NAT membership,
        then each NAT-ed host's relay, then the skew factors.  Relays
        prefer a reachable host in the NAT-ed host's own cluster — the
        "hole-punching helper next door" layout — falling back to any
        reachable host.
        """
        from repro.netsim.network import FaultModel

        host_cluster = np.asarray(host_cluster, dtype=np.int64)
        n = host_cluster.size
        n_clusters = int(host_cluster.max()) + 1
        loss = np.full((n_clusters, n_clusters), self.base_loss_rate)
        if self.intra_cluster_loss_rate is not None:
            np.fill_diagonal(loss, self.intra_cluster_loss_rate)
        if self.cross_cluster_loss_rate is not None:
            off = ~np.eye(n_clusters, dtype=bool)
            loss[off] = self.cross_cluster_loss_rate
        natted = None
        relay_of = None
        if self.nat_fraction > 0.0:
            natted = rng.random(n) < self.nat_fraction
            reachable = np.flatnonzero(~natted)
            if reachable.size == 0:
                raise ConfigurationError(
                    "every host came out NAT-ed; lower nat_fraction"
                )
            relay_of = np.arange(n, dtype=np.int64)
            for host in np.flatnonzero(natted):
                local = reachable[
                    host_cluster[reachable] == host_cluster[host]
                ]
                pool = local if local.size else reachable
                relay_of[host] = int(rng.choice(pool))
        skew = None
        if self.clock_skew > 0.0:
            skew = rng.uniform(
                1.0 - self.clock_skew, 1.0 + self.clock_skew, size=n
            )
        return FaultModel(
            host_cluster,
            loss_matrix=loss,
            outages=self.outages,
            natted=natted,
            relay_of=relay_of,
            skew=skew,
            probe_timeout_ms=self.probe_timeout_ms,
            max_retransmits=self.max_retransmits,
            retransmit_backoff=self.retransmit_backoff,
            query_retry_ms=self.query_retry_ms,
            query_retry_backoff=self.query_retry_backoff,
        )


@dataclass(frozen=True)
class TraceSpec:
    """Observability configuration for a daemon run.

    Attaching one to :attr:`DaemonSpec.trace` turns the simulated-time
    tracing and metrics layer on (:mod:`repro.obs`): per-query spans on
    the loop clock, ledger-tagged maintenance spans, and a
    :class:`~repro.obs.metrics.TimeSeriesBlock` sampled every
    ``sample_interval_ms`` of simulated time.  The layer is passive and
    rng-clean — enabling it never changes answers, timing or bills.
    """

    #: Simulated-time spacing of the metrics sampling grid.
    sample_interval_ms: float = 100.0

    def __post_init__(self) -> None:
        require_positive(self.sample_interval_ms, "sample_interval_ms")


@dataclass(frozen=True)
class DaemonSpec:
    """Simulated-time service load for the ``daemon`` protocol.

    All times are simulated milliseconds on the daemon's event loop.
    Queries arrive as a Poisson process (exponential inter-arrival times
    with mean ``mean_interarrival_ms``); each query enters at a uniformly
    random live member, which serves at most ``per_node_concurrency``
    queries simultaneously — excess arrivals wait in that node's FIFO
    queue.  Probe fan-outs complete after their measured RTTs, so a
    scheme's *time to answer* is its true critical path (per round, the
    slowest probe), not its probe count.

    Membership events, when configured, fire as their own Poisson process
    (mean spacing ``mean_event_interval_ms``); each event draws
    ``Poisson(departure_rate)`` departures (respecting ``min_members``)
    and ``Poisson(arrival_rate)`` arrivals from the standby pool, applied
    through the algorithm's counted join/leave maintenance — index repair
    happens *between* query rounds on the same loop, exactly the
    interleaving a live deployment sees.  ``flush_period_ms`` additionally
    forces deferred-maintenance (coalesce/lazy) flushes on a timer;
    ``ring_repair_period_ms`` re-drives Meridian's gossip ring repair
    continuously (ignored by schemes without ``repair_rings``).

    ``zero_delay`` collapses every probe delay to zero — queries then
    serialise perfectly and the daemon reproduces the blocking
    :meth:`~repro.algorithms.base.NearestPeerAlgorithm.query` results bit
    for bit (the regression tests pin this).
    """

    mean_interarrival_ms: float = 50.0
    per_node_concurrency: int = 2
    #: Fraction of the member pool live at build time (rest = standby).
    initial_fraction: float = 0.7
    min_members: int = 24
    #: Mean spacing of membership events; ``None`` keeps membership static.
    mean_event_interval_ms: float | None = None
    arrival_rate: float = 0.5
    departure_rate: float = 0.5
    #: Forced deferred-maintenance flush period (``None`` = only
    #: event/query-driven flushes).
    flush_period_ms: float | None = None
    #: Continuous Meridian ring-repair period (``None`` disables).
    ring_repair_period_ms: float | None = None
    #: Instantaneous probe delivery (testing / equivalence runs).
    zero_delay: bool = False
    #: Plan-stepping strategy: ``"batch"`` resumes each round with one
    #: vectorised round-completion event (the scaled path); ``"scalar"``
    #: delivers one loop event per probe (the historical reference).  Both
    #: produce identical timelines — the equivalence tests pin it.
    stepper: str = "batch"
    #: Bill the coordination hop: asking peer *p* to probe the target
    #: costs the entry->p RTT, drawn through the network's vectorised path
    #: draw, on top of the probe RTT.  Off by default so goldens hold.
    charge_dispatch: bool = False
    #: Event-loop shards (process fan-out over entry-node id ranges);
    #: ``1`` keeps the serial loop.
    shards: int = 1
    #: Network-fault configuration (``None`` = the perfect network).
    faults: FaultSpec | None = None
    #: Observability configuration (``None`` = tracing off: no tracer is
    #: constructed and the hot path allocates nothing).  Tracing is
    #: rng-clean and passive — it reads only the loop clock and the
    #: daemon's own counters — so enabling it is bit-identical for
    #: answers, time-to-answer and maintenance bills (pinned by the
    #: trace tests and the ``obs-passivity`` lint rule).
    trace: "TraceSpec | None" = None

    def __post_init__(self) -> None:
        require_positive(self.mean_interarrival_ms, "mean_interarrival_ms")
        if self.stepper not in ("batch", "scalar"):
            raise ConfigurationError(
                f"stepper must be 'batch' or 'scalar', got {self.stepper!r}"
            )
        if self.shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {self.shards}")
        require_positive(self.per_node_concurrency, "per_node_concurrency")
        require_in_range(self.initial_fraction, "initial_fraction", 0.0, 1.0)
        if self.min_members < 2:
            raise ConfigurationError(
                f"min_members must be >= 2, got {self.min_members}"
            )
        if self.mean_event_interval_ms is not None:
            require_positive(self.mean_event_interval_ms, "mean_event_interval_ms")
        if self.arrival_rate < 0:
            raise ConfigurationError(
                f"arrival_rate must be >= 0, got {self.arrival_rate}"
            )
        if self.departure_rate < 0:
            raise ConfigurationError(
                f"departure_rate must be >= 0, got {self.departure_rate}"
            )
        if self.flush_period_ms is not None:
            require_positive(self.flush_period_ms, "flush_period_ms")
        if self.ring_repair_period_ms is not None:
            require_positive(self.ring_repair_period_ms, "ring_repair_period_ms")


@dataclass(frozen=True)
class Scenario:
    """A full workload: world + noise + sampling + protocol + trials."""

    name: str
    topology: ClusteredConfig
    sampling: SamplingSpec = SamplingSpec()
    noise: NoiseSpec | None = None
    protocol: str = "sampled"
    #: Queries per trial under the ``sampled`` protocol (ignored by
    #: ``per-target``, which queries each target once).
    n_queries: int = 1000
    #: Independent worlds per scenario (the paper runs three).
    trials: int = 1
    seed: int = 2008
    #: Synthetic-core pool size override (see ``build_clustered_oracle``).
    core_pool_size: int | None = None
    #: Membership dynamics; required by (and exclusive to) the ``churn``
    #: protocol.
    churn: ChurnSpec | None = None
    #: Phase sequence; required by (and exclusive to) the ``service``
    #: protocol (``n_queries`` is then per-phase, from each phase).
    phases: tuple[ServicePhase, ...] | None = None
    #: Simulated-time load; required by (and exclusive to) the ``daemon``
    #: protocol.
    daemon: DaemonSpec | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise ConfigurationError(
                f"unknown protocol {self.protocol!r}; choose from {PROTOCOLS}"
            )
        require_positive(self.n_queries, "n_queries")
        require_positive(self.trials, "trials")
        if self.protocol == "churn" and self.churn is None:
            raise ConfigurationError(
                "the churn protocol requires a ChurnSpec (scenario.churn)"
            )
        if self.protocol != "churn" and self.churn is not None:
            raise ConfigurationError(
                f"churn spec set but protocol is {self.protocol!r}"
            )
        if self.protocol == "service" and not self.phases:
            raise ConfigurationError(
                "the service protocol requires a non-empty phase sequence "
                "(scenario.phases)"
            )
        if self.protocol != "service" and self.phases is not None:
            raise ConfigurationError(
                f"phases set but protocol is {self.protocol!r}"
            )
        if self.protocol == "daemon" and self.daemon is None:
            raise ConfigurationError(
                "the daemon protocol requires a DaemonSpec (scenario.daemon)"
            )
        if self.protocol != "daemon" and self.daemon is not None:
            raise ConfigurationError(
                f"daemon spec set but protocol is {self.protocol!r}"
            )

    def world_seeds(self) -> list[int]:
        """Independent per-trial world seeds derived from the master seed."""
        return spawn_seeds(self.seed, self.trials)

    def with_(self, **changes) -> "Scenario":
        """A copy with fields replaced (sweep convenience)."""
        return replace(self, **changes)


# -- registry ---------------------------------------------------------------

_REGISTRY: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, overwrite: bool = False) -> Scenario:
    """Add a scenario to the process-wide registry (returns it unchanged)."""
    if scenario.name in _REGISTRY and not overwrite:
        raise ConfigurationError(
            f"scenario {scenario.name!r} is already registered "
            "(pass overwrite=True to replace it)"
        )
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look a registered scenario up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def unregister_scenario(name: str) -> Scenario:
    """Remove (and return) a registered scenario.

    The counterpart of :func:`register_scenario`, so tests and parameter
    sweeps can clean up after themselves instead of leaking entries into
    the process-wide registry.
    """
    try:
        return _REGISTRY.pop(name)
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


@contextmanager
def temporary_scenario(scenario: Scenario, overwrite: bool = False):
    """Register ``scenario`` for the duration of a ``with`` block.

    On exit the previous registry state is restored exactly: the entry is
    removed, or — when ``overwrite=True`` replaced an existing scenario —
    the original is put back.
    """
    previous = _REGISTRY.get(scenario.name)
    register_scenario(scenario, overwrite=overwrite)
    try:
        yield scenario
    finally:
        if previous is not None:
            _REGISTRY[scenario.name] = previous
        else:
            _REGISTRY.pop(scenario.name, None)


def list_scenarios() -> list[str]:
    """Names of every registered scenario, sorted."""
    return sorted(_REGISTRY)


# -- canonical workloads ----------------------------------------------------

#: The head-to-head comparison world: every latency-only scheme, one
#: clustered world, realistic probe noise (used by
#: ``benchmarks/bench_algorithm_comparison.py``).
PAPER_COMPARISON = register_scenario(
    Scenario(
        name="paper-comparison",
        topology=ClusteredConfig(n_clusters=8, end_networks_per_cluster=40, delta=0.2),
        sampling=SamplingSpec(n_targets=60),
        noise=NoiseSpec(sigma=0.05, additive_ms=0.3),
        protocol="per-target",
        seed=53,
        description="all schemes, one noisy clustered world, 60 targets",
    )
)

#: A deep-in-the-phase-transition Meridian workload (125 end-networks per
#: cluster, where the clustering condition dominates).
MERIDIAN_PHASE_TRANSITION = register_scenario(
    Scenario(
        name="meridian-phase-transition",
        topology=ClusteredConfig(
            n_clusters=10, end_networks_per_cluster=125, delta=0.2
        ),
        sampling=SamplingSpec(n_targets=100),
        n_queries=600,
        trials=2,
        description="Meridian under a fully developed clustering condition",
    )
)

#: Query load concentrated on a few popular clusters — the skewed workload
#: the hand-rolled loops could not express.
SKEWED_TARGETS = register_scenario(
    Scenario(
        name="skewed-targets",
        topology=ClusteredConfig(n_clusters=12, end_networks_per_cluster=30, delta=0.2),
        sampling=SamplingSpec(n_targets=80, policy="skewed", skew=1.5),
        noise=NoiseSpec(sigma=0.05),
        n_queries=400,
        trials=2,
        description="zipf-weighted targets: load piles onto low-id clusters",
    )
)

# -- churn workloads --------------------------------------------------------

#: Steady-state churn: arrivals balance departures around a ~70% duty
#: cycle, with exponential session lengths — the operating point real p2p
#: populations live at.
STEADY_CHURN = register_scenario(
    Scenario(
        name="steady-churn",
        topology=ClusteredConfig(n_clusters=6, end_networks_per_cluster=20, delta=0.2),
        sampling=SamplingSpec(n_targets=40),
        protocol="churn",
        churn=ChurnSpec(
            initial_fraction=0.7,
            arrival_rate=0.6,
            departure_rate=0.6,
            session_length=80.0,
            warmup_steps=25,
            min_members=32,
        ),
        n_queries=200,
        seed=77,
        description="balanced join/leave flow with exponential sessions",
    )
)

#: Flash crowd: a small seed population, then a burst of arrivals that
#: almost never leave — the join-dominated regime (a swarm forming).
FLASH_CROWD = register_scenario(
    Scenario(
        name="flash-crowd",
        topology=ClusteredConfig(n_clusters=6, end_networks_per_cluster=20, delta=0.2),
        sampling=SamplingSpec(n_targets=40),
        protocol="churn",
        churn=ChurnSpec(
            initial_fraction=0.25,
            arrival_rate=3.0,
            departure_rate=0.05,
            warmup_steps=0,
            min_members=32,
        ),
        n_queries=150,
        seed=78,
        description="join burst onto a small seed population",
    )
)

#: Mass departure: a nearly full population drains with no replacement —
#: the leave-dominated regime (a swarm dissolving / a partition).
MASS_DEPARTURE = register_scenario(
    Scenario(
        name="mass-departure",
        topology=ClusteredConfig(n_clusters=6, end_networks_per_cluster=20, delta=0.2),
        sampling=SamplingSpec(n_targets=40),
        protocol="churn",
        churn=ChurnSpec(
            initial_fraction=0.95,
            arrival_rate=0.0,
            departure_rate=2.0,
            warmup_steps=0,
            min_members=32,
        ),
        n_queries=150,
        seed=79,
        description="population drains toward the membership floor",
    )
)

#: High event rate, sparse queries: eight event steps between consecutive
#: queries.  The regime deferred maintenance disciplines are built for —
#: under ``maintenance="lazy"`` the eight steps coalesce into one index
#: application per query, under ``"coalesce:8"`` into roughly one per
#: window, while ``"eager"`` pays per event.
CHURN_LAZY_INDEX = register_scenario(
    Scenario(
        name="churn-lazy-index",
        topology=ClusteredConfig(n_clusters=6, end_networks_per_cluster=20, delta=0.2),
        sampling=SamplingSpec(n_targets=40),
        protocol="churn",
        churn=ChurnSpec(
            initial_fraction=0.7,
            arrival_rate=0.7,
            departure_rate=0.7,
            session_length=300.0,
            warmup_steps=24,
            min_members=32,
            events_per_query=8,
        ),
        n_queries=60,
        seed=81,
        description="8 event steps per query: the deferred-maintenance regime",
    )
)

# -- simulated-time daemon workloads ----------------------------------------

#: Steady simulated-time service: Poisson queries at a sustainable rate,
#: background churn, and continuous Meridian ring repair — the workload
#: where *time to answer* (not probe count) ranks the schemes.
DAEMON_STEADY = register_scenario(
    Scenario(
        name="daemon-steady",
        topology=ClusteredConfig(n_clusters=6, end_networks_per_cluster=20, delta=0.2),
        sampling=SamplingSpec(n_targets=40),
        protocol="daemon",
        daemon=DaemonSpec(
            mean_interarrival_ms=40.0,
            per_node_concurrency=2,
            initial_fraction=0.7,
            min_members=32,
            mean_event_interval_ms=150.0,
            arrival_rate=0.5,
            departure_rate=0.5,
            ring_repair_period_ms=600.0,
        ),
        n_queries=150,
        seed=91,
        description="Poisson queries + background churn + continuous ring repair",
    )
)

#: Flash crowd on the daemon: queries pour in an order of magnitude faster
#: onto a small seed population while arrivals flood the membership — the
#: regime where per-node concurrency caps fill and FIFO queueing delay
#: dominates time-to-answer.
DAEMON_FLASH_CROWD = register_scenario(
    Scenario(
        name="daemon-flash-crowd",
        topology=ClusteredConfig(n_clusters=6, end_networks_per_cluster=20, delta=0.2),
        sampling=SamplingSpec(n_targets=40),
        protocol="daemon",
        daemon=DaemonSpec(
            mean_interarrival_ms=5.0,
            per_node_concurrency=1,
            initial_fraction=0.25,
            min_members=32,
            mean_event_interval_ms=40.0,
            arrival_rate=3.0,
            departure_rate=0.05,
        ),
        n_queries=150,
        seed=92,
        description="query burst onto a small population: queueing delay dominates",
    )
)

# -- broken-network daemon workloads ----------------------------------------

#: The shared shape of the fault scenarios: the steady daemon world with
#: lighter background churn, so the fault layer — not membership flux —
#: dominates what changes between the three.
_FAULT_DAEMON = DaemonSpec(
    mean_interarrival_ms=40.0,
    per_node_concurrency=2,
    initial_fraction=0.7,
    min_members=32,
    mean_event_interval_ms=500.0,
    arrival_rate=0.3,
    departure_rate=0.3,
)

_FAULT_WORLD = ClusteredConfig(n_clusters=6, end_networks_per_cluster=20, delta=0.2)

#: Lossy links: light loss inside clusters, heavy loss across them —
#: probes drop, retransmit with backoff, occasionally time out.  The
#: availability gate (answered within the deadline) runs on this one.
DAEMON_LOSSY = register_scenario(
    Scenario(
        name="daemon-lossy",
        topology=_FAULT_WORLD,
        sampling=SamplingSpec(n_targets=40),
        protocol="daemon",
        daemon=replace(
            _FAULT_DAEMON,
            faults=FaultSpec(
                base_loss_rate=0.03,
                cross_cluster_loss_rate=0.10,
                probe_timeout_ms=250.0,
                max_retransmits=2,
                deadline_ms=5000.0,
            ),
        ),
        n_queries=150,
        seed=93,
        description="3% intra / 10% cross-cluster loss with retransmits",
    )
)

#: NAT-ed peers: a quarter of the hosts cannot be probed directly; every
#: probe to them detours through a designated reachable relay, billing
#: the longer path.
DAEMON_NATTED = register_scenario(
    Scenario(
        name="daemon-natted",
        topology=_FAULT_WORLD,
        sampling=SamplingSpec(n_targets=40),
        protocol="daemon",
        daemon=replace(
            _FAULT_DAEMON,
            faults=FaultSpec(
                nat_fraction=0.25,
                base_loss_rate=0.01,
                probe_timeout_ms=250.0,
                deadline_ms=5000.0,
            ),
        ),
        n_queries=150,
        seed=94,
        description="25% of hosts NAT-ed: probes relay and bill the detour",
    )
)

#: Regional partitions: two scheduled outage windows cut cluster regions
#: off mid-run; probes crossing the cut are dropped until the window
#: ends, queries ride it out through retransmits and whole-plan retries.
#: Clocks drift a few percent on top.
DAEMON_PARTITION = register_scenario(
    Scenario(
        name="daemon-partition",
        topology=_FAULT_WORLD,
        sampling=SamplingSpec(n_targets=40),
        protocol="daemon",
        daemon=replace(
            _FAULT_DAEMON,
            faults=FaultSpec(
                base_loss_rate=0.01,
                outages=(
                    # Longer than the full retransmit span (250+500+1000
                    # ms), so probes cut off early in the window exhaust
                    # every attempt and the query-level retry path runs.
                    (400.0, 2600.0, (0, 1)),
                    (3500.0, 4300.0, (3,)),
                ),
                clock_skew=0.05,
                probe_timeout_ms=250.0,
                max_retransmits=2,
                query_retry_ms=150.0,
                deadline_ms=6000.0,
            ),
        ),
        n_queries=150,
        seed=95,
        description="two regional outage windows + 5% clock skew",
    )
)

#: Long-running service mode: one built algorithm survives three operating
#: regimes back to back — steady flux, an arrival surge, then a drain —
#: with warm restarts (the index carries across phase boundaries) and one
#: TrialRecord per phase.
SERVICE_MODE_RESTARTS = register_scenario(
    Scenario(
        name="service-mode-restarts",
        topology=ClusteredConfig(n_clusters=6, end_networks_per_cluster=20, delta=0.2),
        sampling=SamplingSpec(n_targets=40),
        protocol="service",
        phases=(
            ServicePhase(
                "steady",
                ChurnSpec(
                    initial_fraction=0.6,
                    arrival_rate=0.5,
                    departure_rate=0.5,
                    session_length=100.0,
                    warmup_steps=10,
                    min_members=32,
                ),
                n_queries=60,
            ),
            ServicePhase(
                "surge",
                ChurnSpec(
                    arrival_rate=2.5,
                    departure_rate=0.2,
                    warmup_steps=5,
                    min_members=32,
                ),
                n_queries=60,
            ),
            ServicePhase(
                "drain",
                ChurnSpec(
                    arrival_rate=0.1,
                    departure_rate=1.8,
                    warmup_steps=5,
                    min_members=32,
                ),
                n_queries=60,
            ),
        ),
        seed=82,
        description="steady -> surge -> drain phases on one live algorithm",
    )
)
