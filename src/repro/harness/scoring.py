"""Vectorised exact-hit / cluster-hit scoring.

The paper's success metrics per query: did the scheme return a member tying
the true minimum latency to the target ("correct closest peer", end-network
mates count as ties), and did it land in the target's cluster?  The batch
scorer answers both for a whole query batch with one dense slice
``matrix[targets][:, members]`` instead of a per-target row scan;
:func:`score_single` is the scalar reference implementation the tests pin
the vectorised path against.

``matrix`` may also be a matrix-free ground truth — any object exposing
``latency_block(rows, cols)`` and ``latency_pairs(a, b)`` (a
:class:`~repro.topology.clustered.ClusteredTopology`): the scorers then
compute exactly the slices they need from the path model, so sparse
million-peer worlds score without an O(n²) matrix.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import DataError


def _block(matrix, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """``matrix[np.ix_(rows, cols)]`` for dense or matrix-free ground truth."""
    if hasattr(matrix, "latency_block"):
        # The scorer is the omniscient judge: it reads ground truth to grade
        # answers after the fact, so nothing is billed to any scheme.
        return matrix.latency_block(rows, cols)  # repro-lint: allow(counted-probes)
    return matrix[np.ix_(rows, cols)]


def _pairs(matrix, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``matrix[a, b]`` (elementwise) for dense or matrix-free ground truth."""
    if hasattr(matrix, "latency_pairs"):
        return matrix.latency_pairs(a, b)
    return matrix[a, b]

#: Latency tie tolerance: members within this of the true minimum count as
#: correct (end-network mates are mutually ~100 us from the target).
TIE_EPS = 1e-12


def score_batch(
    matrix: np.ndarray,
    members: np.ndarray,
    targets: np.ndarray,
    found: np.ndarray,
    host_cluster: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Score a query batch against ground truth, vectorised.

    ``matrix`` is the true dense latency matrix, ``members`` the member id
    set, ``targets``/``found`` the parallel per-query arrays.  Returns
    boolean ``(exact_hit, cluster_hit)`` arrays; ``cluster_hit`` is all
    False when ``host_cluster`` (host id -> cluster id) is not given.
    """
    targets = np.asarray(targets, dtype=int)
    found = np.asarray(found, dtype=int)
    if targets.shape != found.shape:
        raise DataError(
            f"targets {targets.shape} and found {found.shape} must be parallel"
        )
    if targets.size == 0:
        empty = np.zeros(0, dtype=bool)
        return empty, empty.copy()
    # Targets repeat in sampled-query batches: slice once per unique target.
    unique, inverse = np.unique(targets, return_inverse=True)
    best = _block(matrix, unique, np.asarray(members, dtype=int)).min(axis=1)
    exact_hit = _pairs(matrix, targets, found) <= best[inverse] + TIE_EPS
    if host_cluster is None:
        cluster_hit = np.zeros(targets.size, dtype=bool)
    else:
        cluster_hit = host_cluster[found] == host_cluster[targets]
    return exact_hit, cluster_hit


def score_epochs(
    matrix: np.ndarray,
    memberships,
    epoch_of_query: np.ndarray,
    targets: np.ndarray,
    found: np.ndarray,
    host_cluster: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Churn-aware scoring: each query judged against *its* membership.

    ``memberships`` holds the membership of every epoch (the intervals
    between churn events) — either a list with one member-id array per
    epoch, or a :class:`~repro.harness.results.MembershipLog` whose diff
    representation is reconstructed on demand in one forward walk.
    ``epoch_of_query[i]`` names the epoch query ``i`` ran under, so
    "correct closest peer" means closest among the members alive at query
    time — a peer that had already left is neither a valid answer nor part
    of the ground-truth minimum.  Accordingly a ``found`` id outside its
    epoch's membership (a stale answer from a deferred-maintenance index)
    scores as a miss on both metrics.  Queries sharing an epoch are scored
    in one vectorised :func:`score_batch` slice.
    """
    from repro.harness.results import MembershipLog

    epoch_of_query = np.asarray(epoch_of_query, dtype=int)
    targets = np.asarray(targets, dtype=int)
    found = np.asarray(found, dtype=int)
    if epoch_of_query.shape != targets.shape:
        raise DataError(
            f"epoch_of_query {epoch_of_query.shape} and targets "
            f"{targets.shape} must be parallel"
        )
    exact_hit = np.zeros(targets.size, dtype=bool)
    cluster_hit = np.zeros(targets.size, dtype=bool)
    unique_epochs = np.unique(epoch_of_query)
    if isinstance(memberships, MembershipLog):
        epoch_members = memberships.walk(unique_epochs)
    else:
        epoch_members = (memberships[int(e)] for e in unique_epochs)
    for epoch, members in zip(unique_epochs, epoch_members):
        mask = epoch_of_query == epoch
        exact, cluster = score_batch(
            matrix,
            members,
            targets[mask],
            found[mask],
            host_cluster=host_cluster,
        )
        live = np.isin(found[mask], members)
        exact_hit[mask] = exact & live
        cluster_hit[mask] = cluster & live
    return exact_hit, cluster_hit


def score_single(
    matrix: np.ndarray,
    members: np.ndarray,
    target: int,
    found: int,
    host_cluster: np.ndarray | None = None,
) -> tuple[bool, bool]:
    """Scalar reference scorer (one per-target row scan, as the old loops)."""
    row = matrix[target, np.asarray(members, dtype=int)]
    exact = bool(matrix[target, found] <= row.min() + TIE_EPS)
    cluster = (
        bool(host_cluster[found] == host_cluster[target])
        if host_cluster is not None
        else False
    )
    return exact, cluster
