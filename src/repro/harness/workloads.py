"""Cached expensive workload artefacts shared across the repository.

Figures 3-5 share one DNS study; Figures 6, 7, 10 and 11 and the extent
extension share one Azureus world/study.  Caching here (process-wide, keyed
by seed and scale) keeps ``run_all``, the benchmark suite and the tests
from regenerating multi-second artefacts per figure.
"""

from __future__ import annotations

from functools import lru_cache

from repro.measurement.azureus_pipeline import AzureusStudy, AzureusStudyResult
from repro.measurement.datasets import (
    generate_azureus_population,
    generate_dns_server_population,
)
from repro.measurement.dns_pipeline import DnsStudy, DnsStudyResult
from repro.topology.internet import SyntheticInternet


@lru_cache(maxsize=4)
def dns_internet(seed: int, paper_scale: bool) -> SyntheticInternet:
    """The Internet hosting the Section 3.1 DNS-server population."""
    return generate_dns_server_population(seed=seed, paper_scale=paper_scale)


@lru_cache(maxsize=4)
def dns_study(seed: int, paper_scale: bool) -> DnsStudyResult:
    """The completed Section 3.1 pipeline (Figures 3, 4, 5)."""
    return DnsStudy(dns_internet(seed, paper_scale), seed=seed).run()


@lru_cache(maxsize=4)
def azureus_internet(seed: int, paper_scale: bool) -> SyntheticInternet:
    """The Internet hosting the Section 3.2 Azureus-like population."""
    return generate_azureus_population(seed=seed, paper_scale=paper_scale)


@lru_cache(maxsize=4)
def azureus_study(seed: int, paper_scale: bool) -> AzureusStudyResult:
    """The completed Section 3.2 pipeline (Figures 6, 7)."""
    return AzureusStudy(azureus_internet(seed, paper_scale), seed=seed).run()
