"""The unified workload / query-engine layer.

Every experiment, benchmark and example in the repository evaluates
nearest-peer schemes *under a fixed workload*: build a world, pick members
and targets, run a batch of queries, score exact-hit / cluster-hit /
probe-cost.  This package is that loop, written once:

* :class:`Scenario` — a declarative workload spec (topology + noise model +
  member/target sampling policy + trial count + seed) with a process-wide
  registry, so new workloads are one dataclass away;
* :class:`QueryEngine` — executes scenarios: builds worlds, fans trials out
  across seeds (optionally over a :mod:`concurrent.futures` process pool),
  runs query batches and scores them with one vectorised matrix slice;
* :class:`TrialRecord` / :class:`AggregateStats` — typed per-trial and
  cross-trial results, consumed by :mod:`repro.analysis.compare`;
* :mod:`repro.harness.workloads` — the cached expensive artefacts (DNS and
  Azureus measurement studies) shared by the measurement-driven figures.

Experiment drivers, benchmarks and examples never hand-roll member/target
sampling or per-target scoring loops; they describe the workload and hand
it to the engine.
"""

from repro.harness.engine import QueryEngine
from repro.harness.results import (
    AggregateStats,
    DaemonTrialRecord,
    MembershipLog,
    ScenarioResult,
    TrialRecord,
)
from repro.harness.scenario import (
    ChurnSpec,
    DaemonSpec,
    FaultSpec,
    NoiseSpec,
    SamplingSpec,
    Scenario,
    ServicePhase,
    TraceSpec,
    get_scenario,
    list_scenarios,
    register_scenario,
    temporary_scenario,
    unregister_scenario,
)
from repro.harness.scoring import score_batch, score_epochs, score_single

__all__ = [
    "AggregateStats",
    "ChurnSpec",
    "DaemonSpec",
    "FaultSpec",
    "DaemonTrialRecord",
    "MembershipLog",
    "NoiseSpec",
    "QueryEngine",
    "SamplingSpec",
    "Scenario",
    "ScenarioResult",
    "ServicePhase",
    "TraceSpec",
    "TrialRecord",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
    "score_batch",
    "score_epochs",
    "score_single",
    "temporary_scenario",
    "unregister_scenario",
]
