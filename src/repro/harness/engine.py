"""The query engine: one trial loop for the whole repository.

The engine owns the lifecycle every experiment/benchmark used to hand-roll:
build a world, sample members and targets, build a
:class:`~repro.algorithms.base.NearestPeerAlgorithm`, run a query batch,
score it with the vectorised matrix slice, and aggregate across trials —
optionally fanning independent trials out over a
:class:`~concurrent.futures.ProcessPoolExecutor`.

Four query protocols cover the repo's workloads (see
:mod:`repro.harness.scenario`): ``sampled`` reproduces the Meridian
Section 4 batch (targets drawn with replacement, one rng threaded through
build and queries), ``per-target`` reproduces the head-to-head
comparison (each target once, per-target query seeds, schemes sharing one
noisy oracle so they face identical measurement error), ``churn``
drives the dynamic-membership lifecycle (join/leave events from a
:class:`~repro.harness.scenario.ChurnSpec` interleaved with sampled
queries on one seeded stream, scored against the membership at query
time, with per-query ``maintenance_probes`` accounting), ``service``
keeps one built algorithm alive across a sequence of churn phases
(:meth:`QueryEngine.run_service_trial` — warm restarts, one
:class:`TrialRecord` per phase, epoch history in one shared
:class:`~repro.harness.results.MembershipLog` diff log), and ``daemon``
runs the simulated-time service (:meth:`QueryEngine.run_daemon_trial` —
Poisson arrivals, per-node concurrency caps, membership events and
continuous ring repair on one event loop, producing a
:class:`~repro.harness.results.DaemonTrialRecord` whose headline metric
is time to answer).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.algorithms.base import NearestPeerAlgorithm
from repro.harness.results import (
    DaemonTrialRecord,
    MembershipLog,
    ScenarioResult,
    TrialRecord,
)
from repro.harness.scenario import (
    ChurnSpec,
    DaemonSpec,
    NoiseSpec,
    SamplingSpec,
    Scenario,
    ServicePhase,
)
from repro.harness.scoring import score_batch, score_epochs
from repro.latency.builder import ClusteredWorld, build_clustered_oracle
from repro.topology.oracle import LatencyOracle
from repro.util.errors import ConfigurationError
from repro.util.rng import make_rng, spawn_seeds

#: Anything that yields a fresh algorithm instance: the class itself, a
#: ``functools.partial`` over it, or any zero-argument callable.  Must be
#: picklable for process-pool fan-out.
AlgorithmFactory = Callable[[], NearestPeerAlgorithm]


class QueryEngine:
    """Runs scenarios: world construction, trial fan-out, batch scoring.

    ``workers > 1`` fans a scenario's independent trials out across a
    process pool (one world per task, results identical to the sequential
    path — trials share nothing but the scenario spec).
    """

    def __init__(self, workers: int | None = None) -> None:
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers or 1

    # -- scenario execution ------------------------------------------------

    def run_scenario(
        self,
        scenario: Scenario,
        algorithm_factory: AlgorithmFactory,
    ) -> ScenarioResult:
        """Run every trial of ``scenario`` and collect the records.

        A ``service`` scenario yields one record per phase per world seed
        (phases of one seed are consecutive, tagged by ``record.phase``).
        """
        seeds = scenario.world_seeds()
        task = (
            _run_service_task if scenario.protocol == "service" else _run_trial_task
        )
        if self.workers > 1 and len(seeds) > 1:
            with ProcessPoolExecutor(
                max_workers=min(self.workers, len(seeds))
            ) as pool:
                outputs = list(
                    pool.map(
                        task,
                        [scenario] * len(seeds),
                        [algorithm_factory] * len(seeds),
                        seeds,
                    )
                )
        else:
            outputs = [task(scenario, algorithm_factory, seed) for seed in seeds]
        if scenario.protocol == "service":
            records = [record for batch in outputs for record in batch]
        else:
            records = list(outputs)
        return ScenarioResult(scenario=scenario, records=records)

    def run_trial(
        self,
        scenario: Scenario,
        algorithm_factory: AlgorithmFactory,
        world_seed: int,
    ) -> TrialRecord:
        """Build one world from the scenario and run one trial on it."""
        if scenario.protocol == "service":
            raise ConfigurationError(
                "a service scenario produces one record per phase; use "
                "run_scenario() or run_service_trial()"
            )
        world = build_clustered_oracle(
            scenario.topology,
            seed=world_seed,
            core_pool_size=scenario.core_pool_size,
        )
        if scenario.protocol == "daemon":
            return self.run_daemon_trial(
                world,
                algorithm_factory(),
                scenario.daemon,
                sampling=scenario.sampling,
                n_queries=scenario.n_queries,
                seed=world_seed,
                noise=scenario.noise,
            )
        return self.run_world_trial(
            world,
            algorithm_factory(),
            sampling=scenario.sampling,
            protocol=scenario.protocol,
            n_queries=scenario.n_queries,
            seed=world_seed,
            noise=scenario.noise,
            churn=scenario.churn,
        )

    def run_world_trial(
        self,
        world: ClusteredWorld,
        algorithm: NearestPeerAlgorithm,
        *,
        sampling: SamplingSpec,
        protocol: str = "sampled",
        n_queries: int | None = None,
        seed: int | np.random.Generator | None = None,
        noise: NoiseSpec | None = None,
        probe_oracle: LatencyOracle | None = None,
        churn: ChurnSpec | None = None,
    ) -> TrialRecord:
        """One trial on a pre-built world (the engine's core primitive).

        ``probe_oracle`` overrides the noise spec when callers need to share
        one stateful oracle across trials (see :meth:`compare`).
        """
        if protocol == "daemon":
            raise ConfigurationError(
                "the daemon protocol carries its own spec; use "
                "run_daemon_trial() (or run_trial() on a daemon scenario)"
            )
        rng = make_rng(seed)
        targets = sampling.sample(world, rng)
        members = np.setdiff1d(np.arange(world.topology.n_nodes), targets)
        if probe_oracle is None and noise is not None:
            probe_oracle = noise.wrap(world.oracle, seed)
        query_targets, results, churn_log = self._run_batch(
            algorithm,
            world,
            members,
            targets,
            protocol=protocol,
            n_queries=n_queries,
            rng=rng,
            build_seed=seed,
            probe_oracle=probe_oracle,
            churn=churn,
        )
        return self._record(
            world, members, query_targets, results, algorithm.name, seed,
            churn_log=churn_log,
        )

    def compare(
        self,
        scenario: Scenario,
        algorithm_factories: Sequence[AlgorithmFactory],
        world: ClusteredWorld | None = None,
    ) -> list[TrialRecord]:
        """Head-to-head: every scheme on one identical world and workload.

        All schemes see the same members, the same targets in the same
        order, and (under the ``per-target`` protocol) per-target query
        seeds — common random numbers, so measured differences are scheme
        differences.  Under the ``daemon`` protocol every scheme replays
        the identical simulated-time workload — the same query arrival
        times, targets, entry nodes and membership events — so the
        resulting :class:`~repro.harness.results.DaemonTrialRecord` rows
        rank schemes by *time to answer* under one load, not just by
        probe count (see :func:`repro.analysis.compare.rank_by_time_to_answer`).

        Comparison is single-world by construction (schemes must share the
        world), so the world is built from ``scenario.seed`` directly and
        ``scenario.trials`` must be 1.  When a noise spec is set, one
        stateful noisy oracle is shared across schemes (each scheme's
        probes advance its stream, exactly as the historical benchmark
        did), so with noise the rows depend on factory order and only the
        noise-free case is reproduced solo by :meth:`run_world_trial` on a
        world built with the same seed.  Noise is measurement error, not
        workload: sharing the stream biases no scheme systematically.
        """
        if scenario.trials != 1:
            raise ConfigurationError(
                f"compare() runs one shared world but scenario "
                f"{scenario.name!r} has trials={scenario.trials}; use "
                "scenario.with_(trials=1) or run_scenario() per scheme"
            )
        if scenario.protocol == "service":
            raise ConfigurationError(
                "compare() does not support the service protocol; run each "
                "scheme through run_scenario() instead"
            )
        if world is None:
            world = build_clustered_oracle(
                scenario.topology,
                seed=scenario.seed,
                core_pool_size=scenario.core_pool_size,
            )
        if scenario.protocol == "daemon":
            # run_daemon_trial re-derives targets and the whole workload
            # stream from the scenario seed, so every scheme faces the
            # identical simulated-time load; only the noisy probe oracle
            # (when set) is shared statefully, as in the other protocols.
            probe_oracle = (
                scenario.noise.wrap(world.oracle, scenario.seed)
                if scenario.noise is not None
                else None
            )
            return [
                self.run_daemon_trial(
                    world,
                    factory(),
                    scenario.daemon,
                    sampling=scenario.sampling,
                    n_queries=scenario.n_queries,
                    seed=scenario.seed,
                    probe_oracle=probe_oracle,
                )
                for factory in algorithm_factories
            ]
        rng = make_rng(scenario.seed)
        targets = scenario.sampling.sample(world, rng)
        members = np.setdiff1d(np.arange(world.topology.n_nodes), targets)
        probe_oracle = (
            scenario.noise.wrap(world.oracle, scenario.seed)
            if scenario.noise is not None
            else None
        )
        # Every scheme gets an identically-seeded generator (fairness), on
        # a child seed so its draws don't replay the target-sampling stream.
        scheme_seed = spawn_seeds(scenario.seed, 1)[0]
        records = []
        for factory in algorithm_factories:
            algorithm = factory()
            query_targets, results, churn_log = self._run_batch(
                algorithm,
                world,
                members,
                targets,
                protocol=scenario.protocol,
                n_queries=scenario.n_queries,
                rng=make_rng(scheme_seed),
                build_seed=scenario.seed,
                probe_oracle=probe_oracle,
                churn=scenario.churn,
            )
            records.append(
                self._record(
                    world, members, query_targets, results,
                    algorithm.name, scenario.seed, churn_log=churn_log,
                )
            )
        return records

    # The measurement-driven figures run through the harness too, via the
    # process-wide study caches in :mod:`repro.harness.workloads`.

    # -- internals ---------------------------------------------------------

    def _run_batch(
        self,
        algorithm: NearestPeerAlgorithm,
        world: ClusteredWorld,
        members: np.ndarray,
        targets: np.ndarray,
        *,
        protocol: str,
        n_queries: int | None,
        rng: np.random.Generator,
        build_seed: int | np.random.Generator | None,
        probe_oracle: LatencyOracle | None,
        churn: ChurnSpec | None = None,
    ) -> tuple[np.ndarray, list, "_ChurnLog | None"]:
        """Build the algorithm and run one query batch (all protocols).

        ``sampled`` threads ``rng`` through build and queries, drawing each
        query's target just before firing it (the Meridian Section 4
        discipline); ``per-target`` builds from ``build_seed`` and queries
        each target once with the target id as its seed; ``churn`` is
        ``sampled`` with membership events interleaved between queries,
        drawn from the same ``rng`` stream (see :meth:`_run_churn_batch`).
        """
        if protocol == "sampled":
            algorithm.build(world.oracle, members, seed=rng, probe_oracle=probe_oracle)
            count = n_queries if n_queries is not None else targets.size
            # The target draws CANNOT be hoisted into one
            # ``rng.choice(targets, size=count)``: each query consumes the
            # same generator (seed=rng), so pre-drawing all targets would
            # reorder the stream and change every fixed-seed trial.  The
            # loop stays, with the per-iteration int()/indexing overhead
            # hoisted instead (verified bit-identical by regression test).
            query_targets = np.empty(count, dtype=int)
            results = []
            choice = rng.choice
            query = algorithm.query
            append = results.append
            for i in range(count):
                target = int(choice(targets))
                query_targets[i] = target
                append(query(target, seed=rng))
        elif protocol == "per-target":
            algorithm.build(
                world.oracle, members, seed=build_seed, probe_oracle=probe_oracle
            )
            query_targets = targets.astype(int)
            results = [algorithm.query(int(t), seed=int(t)) for t in query_targets]
        elif protocol == "churn":
            if churn is None:
                raise ConfigurationError("the churn protocol requires a ChurnSpec")
            return self._run_churn_batch(
                algorithm,
                world,
                members,
                targets,
                churn=churn,
                n_queries=n_queries,
                rng=rng,
                probe_oracle=probe_oracle,
            )
        else:
            raise ConfigurationError(f"unknown protocol {protocol!r}")
        return query_targets, results, None

    def _run_churn_batch(
        self,
        algorithm: NearestPeerAlgorithm,
        world: ClusteredWorld,
        members: np.ndarray,
        targets: np.ndarray,
        *,
        churn: ChurnSpec,
        n_queries: int | None,
        rng: np.random.Generator,
        probe_oracle: LatencyOracle | None,
    ) -> tuple[np.ndarray, list, "_ChurnLog"]:
        """The churn protocol: one :class:`_ChurnSession` phase."""
        count = n_queries if n_queries is not None else targets.size
        session = _ChurnSession(
            algorithm, world, members, targets, churn, rng, probe_oracle
        )
        return session.run_phase(churn, count)

    def run_service_trial(
        self,
        world: ClusteredWorld,
        algorithm: NearestPeerAlgorithm,
        phases: Sequence["ServicePhase"],
        *,
        sampling: SamplingSpec,
        seed: int | np.random.Generator | None = None,
        noise: NoiseSpec | None = None,
        probe_oracle: LatencyOracle | None = None,
    ) -> list[TrialRecord]:
        """Long-running service mode: one live algorithm across phases.

        The algorithm is built once and then carried *warm* through the
        phase sequence — its index, membership, standby pool, session
        timers and epoch log all persist across phase boundaries, so a
        later phase starts from whatever state the previous one left
        (exactly what a deployed service restarting its workload does,
        and what a cold per-phase rebuild would hide).  Each phase runs
        its own churn dynamics (``phase.churn``), with the phase's
        ``warmup_steps`` acting as an event-only transition period, and
        yields one :class:`TrialRecord` tagged ``phase=phase.name``.
        """
        if not phases:
            raise ConfigurationError("service mode needs at least one phase")
        rng = make_rng(seed)
        targets = sampling.sample(world, rng)
        members = np.setdiff1d(np.arange(world.topology.n_nodes), targets)
        if probe_oracle is None and noise is not None:
            probe_oracle = noise.wrap(world.oracle, seed)
        session = _ChurnSession(
            algorithm, world, members, targets, phases[0].churn, rng, probe_oracle
        )
        records = []
        for phase in phases:
            query_targets, results, log = session.run_phase(
                phase.churn, phase.n_queries
            )
            records.append(
                self._record(
                    world, members, query_targets, results,
                    algorithm.name, seed, churn_log=log, phase=phase.name,
                )
            )
        return records

    def run_daemon_trial(
        self,
        world: ClusteredWorld,
        algorithm: NearestPeerAlgorithm,
        spec: "DaemonSpec",
        *,
        sampling: SamplingSpec,
        n_queries: int = 100,
        seed: int | np.random.Generator | None = None,
        noise: NoiseSpec | None = None,
        probe_oracle: LatencyOracle | None = None,
        max_sim_ms: float | None = None,
    ) -> DaemonTrialRecord:
        """Simulated-time service: one daemon run, scored and recorded.

        Mirrors the churn session's stream discipline — the workload
        stream (arrivals, targets, entry nodes, membership draws) is split
        off the trial rng *first*, so one integer seed replays the whole
        run and every scheme compared under the same seed faces the
        identical load no matter how much randomness its own build and
        maintenance consume.  Queries are scored against the membership
        alive when they entered service (:func:`score_epochs` over the
        daemon's epoch log).

        ``spec.shards > 1`` hands the run to
        :func:`~repro.service.sharded.run_sharded_daemon`, which pre-draws
        the same workload stream into a script and partitions the loop by
        entry-node range (sharded runs forbid probe noise — see there).

        ``spec.faults`` attaches the broken-network layer: the fault
        model is built — and every per-query fault outcome later drawn —
        from a *dedicated* stream keyed off ``spec.faults.seed`` (falling
        back to the trial seed), so enabling faults never perturbs the
        workload or algorithm draws and all schemes under one seed face
        the identical broken network.  ``max_sim_ms`` arms the event
        loop's livelock guard for fault runs that might fail to converge.
        """
        from repro.service.daemon import QueryDaemon
        from repro.service.sharded import run_sharded_daemon

        if spec is None:
            raise ConfigurationError("the daemon protocol requires a DaemonSpec")
        rng = make_rng(seed)
        targets = sampling.sample(world, rng)
        members = np.setdiff1d(np.arange(world.topology.n_nodes), targets)
        if probe_oracle is None and noise is not None:
            probe_oracle = noise.wrap(world.oracle, seed)
        if spec.shards > 1 and probe_oracle is not None:
            raise ConfigurationError(
                "sharded daemon runs forbid probe noise: the noisy oracle's "
                "shared stream would make measurements depend on the shard "
                "layout"
            )
        workload_rng = np.random.default_rng(int(rng.integers(2**63)))
        n_initial = int(round(spec.initial_fraction * members.size))
        n_initial = min(members.size, max(spec.min_members, n_initial))
        shuffled = workload_rng.permutation(members)
        live = np.sort(shuffled[:n_initial])
        standby = shuffled[n_initial:].tolist()
        algorithm.build(world.oracle, live, seed=rng, probe_oracle=probe_oracle)
        fault_model = None
        fault_key = None
        deadline_ms = float("inf")
        if spec.faults is not None:
            faults = spec.faults
            base = faults.seed
            if base is None:
                base = int(seed) if isinstance(seed, (int, np.integer)) else 0
            fault_model = faults.build_model(
                world.topology.host_cluster,
                np.random.default_rng((base, 977001)),
            )
            fault_key = (base, 977002)
            deadline_ms = faults.deadline_ms
        if spec.shards > 1:
            run = run_sharded_daemon(
                algorithm,
                spec,
                targets=targets,
                standby=standby,
                n_queries=n_queries,
                workload_rng=workload_rng,
                algo_rng=rng,
                fault_model=fault_model,
                fault_key=fault_key,
                max_sim_ms=max_sim_ms,
            )
        else:
            daemon = QueryDaemon(
                algorithm,
                spec,
                targets=targets,
                workload_rng=workload_rng,
                algo_rng=rng,
                standby=standby,
                fault_model=fault_model,
                fault_key=fault_key,
            )
            run = daemon.run(n_queries, max_sim_ms=max_sim_ms)
        jobs = run.jobs
        query_targets = np.array([job.target for job in jobs], dtype=int)
        found = np.array([job.result.found for job in jobs], dtype=int)
        truth = (
            world.matrix.values if world.matrix is not None else world.topology
        )
        exact_hit, cluster_hit = score_epochs(
            truth,
            run.memberships,
            np.array([job.epoch for job in jobs], dtype=int),
            query_targets,
            found,
            host_cluster=world.topology.host_cluster,
        )
        spans = timeseries = None
        if run.spans is not None:
            from repro.obs.metrics import populate_span_histograms, sample_times

            populate_span_histograms(run.metrics, run.spans)
            timeseries = run.metrics.sample(
                sample_times(run.makespan_ms, spec.trace.sample_interval_ms)
            )
            spans = tuple(run.spans)
        return DaemonTrialRecord(
            scheme=algorithm.name,
            world_seed=int(seed) if isinstance(seed, (int, np.integer)) else None,
            targets=query_targets,
            found=found,
            found_latency_ms=np.array(
                [job.result.found_latency_ms for job in jobs]
            ),
            probes=np.array([job.result.probes for job in jobs], dtype=int),
            aux_probes=np.array(
                [job.result.aux_probes for job in jobs], dtype=int
            ),
            hops=np.array([job.result.hops for job in jobs], dtype=int),
            exact_hit=exact_hit,
            cluster_hit=cluster_hit,
            found_hub_latency_ms=world.topology.host_hub_latency_ms[found],
            maintenance_probes=np.array(
                [job.result.maintenance_probes for job in jobs], dtype=int
            ),
            membership_size=np.array(
                [job.membership_size for job in jobs], dtype=int
            ),
            warmup_maintenance_probes=run.trailing_maintenance_probes,
            n_churn_events=run.n_events,
            maintenance_by_event=run.maintenance_by_event,
            maintenance_background_probes=run.maintenance_background_probes,
            arrival_ms=np.array([job.arrival_ms for job in jobs]),
            start_ms=np.array([job.start_ms for job in jobs]),
            finish_ms=np.array([job.finish_ms for job in jobs]),
            probe_rounds=np.array([job.rounds for job in jobs], dtype=int),
            makespan_ms=run.makespan_ms,
            queue_depth_time_avg=run.queue_depth_time_avg,
            queue_depth_max=run.queue_depth_max,
            in_flight_probes_time_avg=run.in_flight_probes_time_avg,
            in_flight_probes_max=run.in_flight_probes_max,
            ring_repair_passes=run.ring_repair_passes,
            ring_repair_nodes=run.ring_repair_nodes,
            ring_repair_probes=run.ring_repair_probes,
            forced_flushes=run.forced_flushes,
            probe_drops=np.array([job.probe_drops for job in jobs], dtype=int),
            probe_retransmits=np.array(
                [job.probe_retransmits for job in jobs], dtype=int
            ),
            probe_timeouts=np.array(
                [job.probe_timeouts for job in jobs], dtype=int
            ),
            relayed_probes=np.array(
                [job.relayed_probes for job in jobs], dtype=int
            ),
            query_retries=np.array([job.retries for job in jobs], dtype=int),
            relay_extra_ms=run.relay_extra_ms,
            deadline_ms=deadline_ms,
            loop_events=run.loop_events,
            loop_pending_at_drain=run.loop_pending_at_drain,
            loop_queue_peak=run.loop_queue_peak,
            loop_cancelled_events=run.loop_cancelled_events,
            spans=spans,
            timeseries=timeseries,
        )

    def _record(
        self,
        world: ClusteredWorld,
        members: np.ndarray,
        query_targets: np.ndarray,
        results: list,
        scheme: str,
        seed: int | np.random.Generator | None,
        churn_log: "_ChurnLog | None" = None,
        phase: str | None = None,
    ) -> TrialRecord:
        found = np.array([r.found for r in results], dtype=int)
        truth = (
            world.matrix.values if world.matrix is not None else world.topology
        )
        if churn_log is None:
            exact_hit, cluster_hit = score_batch(
                truth,
                members,
                query_targets,
                found,
                host_cluster=world.topology.host_cluster,
            )
        else:
            # Churn-aware scoring: "nearest" means nearest among the
            # members alive at query time, not the build-time set.
            exact_hit, cluster_hit = score_epochs(
                truth,
                churn_log.memberships,
                np.asarray(churn_log.epoch_of_query, dtype=int),
                query_targets,
                found,
                host_cluster=world.topology.host_cluster,
            )
        return TrialRecord(
            scheme=scheme,
            world_seed=int(seed) if isinstance(seed, (int, np.integer)) else None,
            targets=query_targets,
            found=found,
            found_latency_ms=np.array([r.found_latency_ms for r in results]),
            probes=np.array([r.probes for r in results], dtype=int),
            aux_probes=np.array([r.aux_probes for r in results], dtype=int),
            hops=np.array([r.hops for r in results], dtype=int),
            exact_hit=exact_hit,
            cluster_hit=cluster_hit,
            found_hub_latency_ms=world.topology.host_hub_latency_ms[found],
            maintenance_probes=(
                np.asarray(churn_log.maintenance, dtype=int)
                if churn_log is not None
                else None
            ),
            membership_size=(
                np.asarray(churn_log.membership_size, dtype=int)
                if churn_log is not None
                else None
            ),
            warmup_maintenance_probes=(
                churn_log.warmup_maintenance if churn_log is not None else 0
            ),
            n_churn_events=(
                churn_log.n_events if churn_log is not None else 0
            ),
            phase=phase,
        )


@dataclass
class _ChurnLog:
    """Everything one churn phase records beyond the query results."""

    #: Diff log of membership epochs (epoch 0 = the initial build).  In
    #: service mode the same log is shared by every phase's record —
    #: ``epoch_of_query`` indices are global into it.
    memberships: MembershipLog
    #: Maintenance probes billed to each query slot (the events applied
    #: since the previous query plus any query-triggered flush).
    maintenance: list = field(default_factory=list)
    #: Index into ``memberships`` for each query.
    epoch_of_query: list = field(default_factory=list)
    #: Live membership size at each query.
    membership_size: list = field(default_factory=list)
    #: Maintenance probes spent before the phase's first query.
    warmup_maintenance: int = 0
    #: Non-empty join/leave calls applied during the phase.
    n_events: int = 0


class _ChurnSession:
    """Live dynamic-membership state, threaded across one or more phases.

    Owns everything that must survive a phase boundary in service mode:
    the built algorithm, the standby pool, the session-expiry timers, the
    event clock and the epoch diff log.  The single-phase ``churn``
    protocol is the degenerate case (one session, one phase) and its draw
    sequence is unchanged: the workload-stream split is the session's
    first draw, the initial split and build follow, and each query step
    applies events then queries exactly as before.

    The incoming ``rng`` is split into two derived streams: a *workload*
    stream (membership events and query targets) and the *algorithm*
    stream (build, maintenance and query randomness).  One integer seed
    still replays the whole session, and — because the split is the first
    draw — :meth:`QueryEngine.compare` gives every scheme the identical
    world, event sequence and target sequence (common random numbers) no
    matter how much randomness each scheme's own maintenance consumes.
    """

    def __init__(
        self,
        algorithm: NearestPeerAlgorithm,
        world: ClusteredWorld,
        members: np.ndarray,
        targets: np.ndarray,
        first_churn: ChurnSpec,
        rng: np.random.Generator,
        probe_oracle: LatencyOracle | None,
    ) -> None:
        self.algorithm = algorithm
        self.targets = targets
        self.rng = rng
        self.workload_rng = np.random.default_rng(int(rng.integers(2**63)))
        n_initial = int(round(first_churn.initial_fraction * members.size))
        n_initial = min(members.size, max(first_churn.min_members, n_initial))
        shuffled = self.workload_rng.permutation(members)
        live = np.sort(shuffled[:n_initial])
        self.standby: list[int] = shuffled[n_initial:].tolist()
        algorithm.build(world.oracle, live, seed=rng, probe_oracle=probe_oracle)
        self.memberships = MembershipLog(algorithm.members)
        #: event-step -> arrivals due to depart at that step.
        self.expiries: dict[int, list[int]] = {}
        # node -> due step of its *current* session.  Guards the expiry
        # queue against stale entries: a node that departed early (random
        # draw) and rejoined must live out its new session, not be killed
        # by the old timer.
        self.session_due: dict[int, int] = {}
        #: The event clock, in event steps; phases share it monotonically.
        self.clock = 0
        self._started = False

    def _apply_events(self, spec: ChurnSpec, step: int) -> tuple[int, int]:
        """One event step; returns (maintenance probes, events applied)."""
        algorithm = self.algorithm
        workload_rng = self.workload_rng
        spent = 0
        current = algorithm.members
        # Departures: expired sessions first, then the random draw.
        # dict.fromkeys dedups while keeping order — a stale entry
        # from an earlier session can share this due step with the
        # node's live session, and a doubled departure would put two
        # copies into standby (and eventually a double join).
        departing = [
            node
            for node in dict.fromkeys(self.expiries.pop(step, []))
            if node in current and self.session_due.get(node) == step
        ]
        n_random = int(workload_rng.poisson(spec.departure_rate))
        if n_random > 0:
            pool = current[~np.isin(current, departing)]
            n_random = min(n_random, pool.size)
            if n_random > 0:
                departing.extend(
                    int(x)
                    for x in workload_rng.choice(pool, size=n_random, replace=False)
                )
        headroom = current.size - spec.min_members
        if len(departing) > headroom:
            # The membership floor blocks some departures this step.
            # Expired sessions sit at the head of the list; any that
            # get cut off retry next step so they still expire.
            for node in departing[max(0, headroom):]:
                if self.session_due.get(node) == step:
                    self.expiries.setdefault(step + 1, []).append(node)
                    self.session_due[node] = step + 1
            departing = departing[: max(0, headroom)]
        if departing:
            spent += algorithm.leave(np.asarray(departing, dtype=int), seed=self.rng)
            self.standby.extend(departing)
            for node in departing:
                self.session_due.pop(node, None)
        # Arrivals, capped by standby supply.
        standby = self.standby
        n_arrive = min(int(workload_rng.poisson(spec.arrival_rate)), len(standby))
        arriving: list[int] = []
        if n_arrive > 0:
            picks = workload_rng.choice(len(standby), size=n_arrive, replace=False)
            arriving = [standby[int(i)] for i in picks]
            for index in sorted((int(i) for i in picks), reverse=True):
                del standby[index]
            spent += algorithm.join(np.asarray(arriving, dtype=int), seed=self.rng)
            if spec.session_length is not None:
                lifetimes = workload_rng.exponential(
                    spec.session_length, size=len(arriving)
                )
                for node, life in zip(arriving, lifetimes):
                    due = step + max(1, int(round(life)))
                    self.expiries.setdefault(due, []).append(int(node))
                    self.session_due[int(node)] = due
        if departing or n_arrive:
            self.memberships.append_event(arriving, departing)
        return spent, (1 if departing else 0) + (1 if arriving else 0)

    def run_phase(
        self, spec: ChurnSpec, count: int
    ) -> tuple[np.ndarray, list, _ChurnLog]:
        """Run one phase: warmup event steps, then event+query steps.

        Each query is preceded by ``spec.events_per_query`` event steps;
        its maintenance slot bills those events *plus* any deferred flush
        the query itself triggered, so deferred-discipline accounting
        stays on the books (eager schemes flush nothing at query time and
        are bit-identical to the historical path).  At the end of the
        phase any still-buffered maintenance is drained and billed to the
        final query slot — a coalescing window that never filled must not
        leave its events' bill off the phase's record (and, in service
        mode, must not leak into the next phase's ledger).
        """
        algorithm = self.algorithm
        log = _ChurnLog(memberships=self.memberships)
        if not self._started:
            # The historical clock convention: warmup at -w..-1, queries
            # from 0.  Later phases just continue the running clock.
            self.clock = -spec.warmup_steps
            self._started = True
        for _ in range(spec.warmup_steps):
            spent, events = self._apply_events(spec, self.clock)
            self.clock += 1
            log.warmup_maintenance += spent
            log.n_events += events
        query_targets = np.empty(count, dtype=int)
        results: list = []
        for step in range(count):
            event_spent = 0
            for _ in range(spec.events_per_query):
                spent, events = self._apply_events(spec, self.clock)
                self.clock += 1
                event_spent += spent
                log.n_events += events
            log.epoch_of_query.append(self.memberships.n_epochs - 1)
            log.membership_size.append(int(algorithm.members.size))
            target = int(self.workload_rng.choice(self.targets))
            query_targets[step] = target
            before_flush = algorithm.maintenance_probes_total
            results.append(algorithm.query(target, seed=self.rng))
            log.maintenance.append(
                event_spent + algorithm.maintenance_probes_total - before_flush
            )
        # Phase-boundary drain (a no-op for eager/lazy, whose buffers are
        # empty after a query).
        drained = algorithm.flush_maintenance(seed=self.rng)
        if drained:
            log.maintenance[-1] += drained
        return query_targets, results, log


def _run_trial_task(
    scenario: Scenario, algorithm_factory: AlgorithmFactory, seed: int
) -> TrialRecord:
    """Module-level trial entry point (picklable for the process pool)."""
    return QueryEngine(workers=1).run_trial(scenario, algorithm_factory, seed)


def _run_service_task(
    scenario: Scenario, algorithm_factory: AlgorithmFactory, seed: int
) -> list[TrialRecord]:
    """Module-level service-trial entry point (picklable, one per world)."""
    world = build_clustered_oracle(
        scenario.topology, seed=seed, core_pool_size=scenario.core_pool_size
    )
    return QueryEngine(workers=1).run_service_trial(
        world,
        algorithm_factory(),
        scenario.phases,
        sampling=scenario.sampling,
        seed=seed,
        noise=scenario.noise,
    )
