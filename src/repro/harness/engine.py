"""The query engine: one trial loop for the whole repository.

The engine owns the lifecycle every experiment/benchmark used to hand-roll:
build a world, sample members and targets, build a
:class:`~repro.algorithms.base.NearestPeerAlgorithm`, run a query batch,
score it with the vectorised matrix slice, and aggregate across trials —
optionally fanning independent trials out over a
:class:`~concurrent.futures.ProcessPoolExecutor`.

Three query protocols cover the repo's workloads (see
:mod:`repro.harness.scenario`): ``sampled`` reproduces the Meridian
Section 4 batch (targets drawn with replacement, one rng threaded through
build and queries), ``per-target`` reproduces the head-to-head
comparison (each target once, per-target query seeds, schemes sharing one
noisy oracle so they face identical measurement error), and ``churn``
drives the dynamic-membership lifecycle (join/leave events from a
:class:`~repro.harness.scenario.ChurnSpec` interleaved with sampled
queries on one seeded stream, scored against the membership at query
time, with per-query ``maintenance_probes`` accounting).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.algorithms.base import NearestPeerAlgorithm
from repro.harness.results import ScenarioResult, TrialRecord
from repro.harness.scenario import ChurnSpec, NoiseSpec, SamplingSpec, Scenario
from repro.harness.scoring import score_batch, score_epochs
from repro.latency.builder import ClusteredWorld, build_clustered_oracle
from repro.topology.oracle import LatencyOracle
from repro.util.errors import ConfigurationError
from repro.util.rng import make_rng, spawn_seeds

#: Anything that yields a fresh algorithm instance: the class itself, a
#: ``functools.partial`` over it, or any zero-argument callable.  Must be
#: picklable for process-pool fan-out.
AlgorithmFactory = Callable[[], NearestPeerAlgorithm]


class QueryEngine:
    """Runs scenarios: world construction, trial fan-out, batch scoring.

    ``workers > 1`` fans a scenario's independent trials out across a
    process pool (one world per task, results identical to the sequential
    path — trials share nothing but the scenario spec).
    """

    def __init__(self, workers: int | None = None) -> None:
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers or 1

    # -- scenario execution ------------------------------------------------

    def run_scenario(
        self,
        scenario: Scenario,
        algorithm_factory: AlgorithmFactory,
    ) -> ScenarioResult:
        """Run every trial of ``scenario`` and collect the records."""
        seeds = scenario.world_seeds()
        if self.workers > 1 and len(seeds) > 1:
            with ProcessPoolExecutor(
                max_workers=min(self.workers, len(seeds))
            ) as pool:
                records = list(
                    pool.map(
                        _run_trial_task,
                        [scenario] * len(seeds),
                        [algorithm_factory] * len(seeds),
                        seeds,
                    )
                )
        else:
            records = [
                self.run_trial(scenario, algorithm_factory, seed) for seed in seeds
            ]
        return ScenarioResult(scenario=scenario, records=records)

    def run_trial(
        self,
        scenario: Scenario,
        algorithm_factory: AlgorithmFactory,
        world_seed: int,
    ) -> TrialRecord:
        """Build one world from the scenario and run one trial on it."""
        world = build_clustered_oracle(
            scenario.topology,
            seed=world_seed,
            core_pool_size=scenario.core_pool_size,
        )
        return self.run_world_trial(
            world,
            algorithm_factory(),
            sampling=scenario.sampling,
            protocol=scenario.protocol,
            n_queries=scenario.n_queries,
            seed=world_seed,
            noise=scenario.noise,
            churn=scenario.churn,
        )

    def run_world_trial(
        self,
        world: ClusteredWorld,
        algorithm: NearestPeerAlgorithm,
        *,
        sampling: SamplingSpec,
        protocol: str = "sampled",
        n_queries: int | None = None,
        seed: int | np.random.Generator | None = None,
        noise: NoiseSpec | None = None,
        probe_oracle: LatencyOracle | None = None,
        churn: ChurnSpec | None = None,
    ) -> TrialRecord:
        """One trial on a pre-built world (the engine's core primitive).

        ``probe_oracle`` overrides the noise spec when callers need to share
        one stateful oracle across trials (see :meth:`compare`).
        """
        rng = make_rng(seed)
        targets = sampling.sample(world, rng)
        members = np.setdiff1d(np.arange(world.topology.n_nodes), targets)
        if probe_oracle is None and noise is not None:
            probe_oracle = noise.wrap(world.oracle, seed)
        query_targets, results, churn_log = self._run_batch(
            algorithm,
            world,
            members,
            targets,
            protocol=protocol,
            n_queries=n_queries,
            rng=rng,
            build_seed=seed,
            probe_oracle=probe_oracle,
            churn=churn,
        )
        return self._record(
            world, members, query_targets, results, algorithm.name, seed,
            churn_log=churn_log,
        )

    def compare(
        self,
        scenario: Scenario,
        algorithm_factories: Sequence[AlgorithmFactory],
        world: ClusteredWorld | None = None,
    ) -> list[TrialRecord]:
        """Head-to-head: every scheme on one identical world and workload.

        All schemes see the same members, the same targets in the same
        order, and (under the ``per-target`` protocol) per-target query
        seeds — common random numbers, so measured differences are scheme
        differences.

        Comparison is single-world by construction (schemes must share the
        world), so the world is built from ``scenario.seed`` directly and
        ``scenario.trials`` must be 1.  When a noise spec is set, one
        stateful noisy oracle is shared across schemes (each scheme's
        probes advance its stream, exactly as the historical benchmark
        did), so with noise the rows depend on factory order and only the
        noise-free case is reproduced solo by :meth:`run_world_trial` on a
        world built with the same seed.  Noise is measurement error, not
        workload: sharing the stream biases no scheme systematically.
        """
        if scenario.trials != 1:
            raise ConfigurationError(
                f"compare() runs one shared world but scenario "
                f"{scenario.name!r} has trials={scenario.trials}; use "
                "scenario.with_(trials=1) or run_scenario() per scheme"
            )
        if world is None:
            world = build_clustered_oracle(
                scenario.topology,
                seed=scenario.seed,
                core_pool_size=scenario.core_pool_size,
            )
        rng = make_rng(scenario.seed)
        targets = scenario.sampling.sample(world, rng)
        members = np.setdiff1d(np.arange(world.topology.n_nodes), targets)
        probe_oracle = (
            scenario.noise.wrap(world.oracle, scenario.seed)
            if scenario.noise is not None
            else None
        )
        # Every scheme gets an identically-seeded generator (fairness), on
        # a child seed so its draws don't replay the target-sampling stream.
        scheme_seed = spawn_seeds(scenario.seed, 1)[0]
        records = []
        for factory in algorithm_factories:
            algorithm = factory()
            query_targets, results, churn_log = self._run_batch(
                algorithm,
                world,
                members,
                targets,
                protocol=scenario.protocol,
                n_queries=scenario.n_queries,
                rng=make_rng(scheme_seed),
                build_seed=scenario.seed,
                probe_oracle=probe_oracle,
                churn=scenario.churn,
            )
            records.append(
                self._record(
                    world, members, query_targets, results,
                    algorithm.name, scenario.seed, churn_log=churn_log,
                )
            )
        return records

    # The measurement-driven figures run through the harness too, via the
    # process-wide study caches in :mod:`repro.harness.workloads`.

    # -- internals ---------------------------------------------------------

    def _run_batch(
        self,
        algorithm: NearestPeerAlgorithm,
        world: ClusteredWorld,
        members: np.ndarray,
        targets: np.ndarray,
        *,
        protocol: str,
        n_queries: int | None,
        rng: np.random.Generator,
        build_seed: int | np.random.Generator | None,
        probe_oracle: LatencyOracle | None,
        churn: ChurnSpec | None = None,
    ) -> tuple[np.ndarray, list, "_ChurnLog | None"]:
        """Build the algorithm and run one query batch (all protocols).

        ``sampled`` threads ``rng`` through build and queries, drawing each
        query's target just before firing it (the Meridian Section 4
        discipline); ``per-target`` builds from ``build_seed`` and queries
        each target once with the target id as its seed; ``churn`` is
        ``sampled`` with membership events interleaved between queries,
        drawn from the same ``rng`` stream (see :meth:`_run_churn_batch`).
        """
        if protocol == "sampled":
            algorithm.build(world.oracle, members, seed=rng, probe_oracle=probe_oracle)
            count = n_queries if n_queries is not None else targets.size
            # The target draws CANNOT be hoisted into one
            # ``rng.choice(targets, size=count)``: each query consumes the
            # same generator (seed=rng), so pre-drawing all targets would
            # reorder the stream and change every fixed-seed trial.  The
            # loop stays, with the per-iteration int()/indexing overhead
            # hoisted instead (verified bit-identical by regression test).
            query_targets = np.empty(count, dtype=int)
            results = []
            choice = rng.choice
            query = algorithm.query
            append = results.append
            for i in range(count):
                target = int(choice(targets))
                query_targets[i] = target
                append(query(target, seed=rng))
        elif protocol == "per-target":
            algorithm.build(
                world.oracle, members, seed=build_seed, probe_oracle=probe_oracle
            )
            query_targets = targets.astype(int)
            results = [algorithm.query(int(t), seed=int(t)) for t in query_targets]
        elif protocol == "churn":
            if churn is None:
                raise ConfigurationError("the churn protocol requires a ChurnSpec")
            return self._run_churn_batch(
                algorithm,
                world,
                members,
                targets,
                churn=churn,
                n_queries=n_queries,
                rng=rng,
                probe_oracle=probe_oracle,
            )
        else:
            raise ConfigurationError(f"unknown protocol {protocol!r}")
        return query_targets, results, None

    def _run_churn_batch(
        self,
        algorithm: NearestPeerAlgorithm,
        world: ClusteredWorld,
        members: np.ndarray,
        targets: np.ndarray,
        *,
        churn: ChurnSpec,
        n_queries: int | None,
        rng: np.random.Generator,
        probe_oracle: LatencyOracle | None,
    ) -> tuple[np.ndarray, list, "_ChurnLog"]:
        """The churn protocol: events and queries from one seeded trial.

        The member pool splits into an initial live membership and a
        standby pool.  Each step applies departures (session expiries plus
        a Poisson draw of random members) and arrivals (a Poisson draw
        from standby), then fires one sampled query; ``warmup_steps``
        event-only steps precede the first query.  Membership snapshots
        are logged per epoch so scoring can judge every query against the
        members alive when it ran.

        The single incoming ``rng`` is split into two derived streams: a
        *workload* stream (membership events and query targets) and the
        *algorithm* stream (build, maintenance and query randomness).
        One integer seed still replays the whole trial, and — because the
        split is the first draw — :meth:`compare` gives every scheme the
        identical world, event sequence and target sequence (common
        random numbers) no matter how much randomness each scheme's own
        maintenance consumes.
        """
        count = n_queries if n_queries is not None else targets.size
        workload_rng = np.random.default_rng(int(rng.integers(2**63)))
        n_initial = int(round(churn.initial_fraction * members.size))
        n_initial = min(members.size, max(churn.min_members, n_initial))
        shuffled = workload_rng.permutation(members)
        live = np.sort(shuffled[:n_initial])
        standby = shuffled[n_initial:].tolist()
        algorithm.build(world.oracle, live, seed=rng, probe_oracle=probe_oracle)

        log = _ChurnLog(memberships=[algorithm.members.copy()])
        expiries: dict[int, list[int]] = {}  # step -> arrivals due to depart
        # node -> due step of its *current* session.  Guards the expiry
        # queue against stale entries: a node that departed early (random
        # draw) and rejoined must live out its new session, not be killed
        # by the old timer.
        session_due: dict[int, int] = {}

        def apply_events(step: int) -> int:
            """One event step; returns the maintenance probes it cost."""
            spent = 0
            current = algorithm.members
            # Departures: expired sessions first, then the random draw.
            # dict.fromkeys dedups while keeping order — a stale entry
            # from an earlier session can share this due step with the
            # node's live session, and a doubled departure would put two
            # copies into standby (and eventually a double join).
            departing = [
                node
                for node in dict.fromkeys(expiries.pop(step, []))
                if node in current and session_due.get(node) == step
            ]
            n_random = int(workload_rng.poisson(churn.departure_rate))
            if n_random > 0:
                pool = current[~np.isin(current, departing)]
                n_random = min(n_random, pool.size)
                if n_random > 0:
                    departing.extend(
                        int(x)
                        for x in workload_rng.choice(pool, size=n_random, replace=False)
                    )
            headroom = current.size - churn.min_members
            if len(departing) > headroom:
                # The membership floor blocks some departures this step.
                # Expired sessions sit at the head of the list; any that
                # get cut off retry next step so they still expire.
                for node in departing[max(0, headroom):]:
                    if session_due.get(node) == step:
                        expiries.setdefault(step + 1, []).append(node)
                        session_due[node] = step + 1
                departing = departing[: max(0, headroom)]
            if departing:
                spent += algorithm.leave(np.asarray(departing, dtype=int), seed=rng)
                standby.extend(departing)
                for node in departing:
                    session_due.pop(node, None)
            # Arrivals, capped by standby supply.
            n_arrive = min(int(workload_rng.poisson(churn.arrival_rate)), len(standby))
            if n_arrive > 0:
                picks = workload_rng.choice(len(standby), size=n_arrive, replace=False)
                arriving = [standby[int(i)] for i in picks]
                for index in sorted((int(i) for i in picks), reverse=True):
                    del standby[index]
                spent += algorithm.join(np.asarray(arriving, dtype=int), seed=rng)
                if churn.session_length is not None:
                    lifetimes = workload_rng.exponential(
                        churn.session_length, size=len(arriving)
                    )
                    for node, life in zip(arriving, lifetimes):
                        due = step + max(1, int(round(life)))
                        expiries.setdefault(due, []).append(int(node))
                        session_due[int(node)] = due
            if departing or n_arrive:
                log.memberships.append(algorithm.members.copy())
            return spent

        for step in range(churn.warmup_steps):
            log.warmup_maintenance += apply_events(step - churn.warmup_steps)
        query_targets = np.empty(count, dtype=int)
        results = []
        for step in range(count):
            log.maintenance.append(apply_events(step))
            log.epoch_of_query.append(len(log.memberships) - 1)
            log.membership_size.append(int(algorithm.members.size))
            target = int(workload_rng.choice(targets))
            query_targets[step] = target
            results.append(algorithm.query(target, seed=rng))
        return query_targets, results, log

    def _record(
        self,
        world: ClusteredWorld,
        members: np.ndarray,
        query_targets: np.ndarray,
        results: list,
        scheme: str,
        seed: int | np.random.Generator | None,
        churn_log: "_ChurnLog | None" = None,
    ) -> TrialRecord:
        found = np.array([r.found for r in results], dtype=int)
        if churn_log is None:
            exact_hit, cluster_hit = score_batch(
                world.matrix.values,
                members,
                query_targets,
                found,
                host_cluster=world.topology.host_cluster,
            )
        else:
            # Churn-aware scoring: "nearest" means nearest among the
            # members alive at query time, not the build-time set.
            exact_hit, cluster_hit = score_epochs(
                world.matrix.values,
                churn_log.memberships,
                np.asarray(churn_log.epoch_of_query, dtype=int),
                query_targets,
                found,
                host_cluster=world.topology.host_cluster,
            )
        return TrialRecord(
            scheme=scheme,
            world_seed=int(seed) if isinstance(seed, (int, np.integer)) else None,
            targets=query_targets,
            found=found,
            found_latency_ms=np.array([r.found_latency_ms for r in results]),
            probes=np.array([r.probes for r in results], dtype=int),
            aux_probes=np.array([r.aux_probes for r in results], dtype=int),
            hops=np.array([r.hops for r in results], dtype=int),
            exact_hit=exact_hit,
            cluster_hit=cluster_hit,
            found_hub_latency_ms=world.topology.host_hub_latency_ms[found],
            maintenance_probes=(
                np.asarray(churn_log.maintenance, dtype=int)
                if churn_log is not None
                else None
            ),
            membership_size=(
                np.asarray(churn_log.membership_size, dtype=int)
                if churn_log is not None
                else None
            ),
            warmup_maintenance_probes=(
                churn_log.warmup_maintenance if churn_log is not None else 0
            ),
        )


@dataclass
class _ChurnLog:
    """Everything a churn trial records beyond the query results."""

    #: Membership snapshot per epoch (epoch 0 = the initial build).
    memberships: list = field(default_factory=list)
    #: Maintenance probes billed to each query slot.
    maintenance: list = field(default_factory=list)
    #: Index into ``memberships`` for each query.
    epoch_of_query: list = field(default_factory=list)
    #: Live membership size at each query.
    membership_size: list = field(default_factory=list)
    #: Maintenance probes spent before the first query.
    warmup_maintenance: int = 0


def _run_trial_task(
    scenario: Scenario, algorithm_factory: AlgorithmFactory, seed: int
) -> TrialRecord:
    """Module-level trial entry point (picklable for the process pool)."""
    return QueryEngine(workers=1).run_trial(scenario, algorithm_factory, seed)
