"""Embedding-quality metrics.

The paper's low-dimensionality argument (Section 2.2) predicts that within
a cluster "all peers ... end up having almost the same coordinates"; the
relative-error statistics here make that quantitative, and the tests assert
it: global embedding error can be small while the error *restricted to
intra-cluster pairs* stays near 1 (coordinates carry no information at that
scale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.util.errors import DataError


@dataclass(frozen=True)
class EmbeddingErrorStats:
    """Relative-error summary of an embedding over a pair population."""

    n_pairs: int
    median_relative_error: float
    p90_relative_error: float
    median_absolute_error_ms: float


def pairwise_coordinate_distances(
    pairs: Sequence[tuple[int, int]],
    coordinate_distance: Callable[[int, int], float],
) -> np.ndarray:
    """Predicted RTTs for a list of pairs under an embedding."""
    return np.array([coordinate_distance(a, b) for a, b in pairs])


def embedding_error_stats(
    pairs: Sequence[tuple[int, int]],
    coordinate_distance: Callable[[int, int], float],
    true_latency: Callable[[int, int], float],
) -> EmbeddingErrorStats:
    """Relative/absolute error of an embedding over given pairs.

    Relative error is ``|predicted - actual| / actual`` — the standard
    metric in the coordinate-systems literature.
    """
    if not pairs:
        raise DataError("need at least one pair to evaluate an embedding")
    predicted = pairwise_coordinate_distances(pairs, coordinate_distance)
    actual = np.array([true_latency(a, b) for a, b in pairs])
    if np.any(actual <= 0):
        raise DataError("true latencies must be positive for relative error")
    relative = np.abs(predicted - actual) / actual
    return EmbeddingErrorStats(
        n_pairs=len(pairs),
        median_relative_error=float(np.median(relative)),
        p90_relative_error=float(np.percentile(relative, 90)),
        median_absolute_error_ms=float(np.median(np.abs(predicted - actual))),
    )
