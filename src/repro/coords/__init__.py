"""Network coordinate systems.

The paper's Section 2.2 argues coordinate schemes (Vivaldi, GNP, PIC,
Mithos) cannot embed a clustered latency space with few dimensions, so
coordinate-driven nearest-peer search fails under the clustering condition.
This package implements the two canonical embedding styles used by those
systems:

* :mod:`repro.coords.vivaldi` — the decentralised spring-relaxation
  algorithm (Dabek et al., SIGCOMM 2004), with adaptive timestep and error
  estimates;
* :mod:`repro.coords.gnp` — landmark-based global embedding (Ng & Zhang,
  INFOCOM 2002) via a deterministic in-house Levenberg-Marquardt solve.

:mod:`repro.coords.errors` quantifies embedding quality, including the
paper's diagnostic: relative error *within* a cluster stays ~1 no matter
how many dimensions are spent.
"""

from repro.coords.errors import embedding_error_stats, pairwise_coordinate_distances
from repro.coords.gnp import GnpConfig, GnpEmbedding
from repro.coords.vivaldi import VivaldiConfig, VivaldiSystem

__all__ = [
    "VivaldiConfig",
    "VivaldiSystem",
    "GnpConfig",
    "GnpEmbedding",
    "embedding_error_stats",
    "pairwise_coordinate_distances",
]
