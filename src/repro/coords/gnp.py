"""GNP-style landmark coordinates (Ng & Zhang, INFOCOM 2002).

A small set of landmarks measure each other and solve a global embedding;
every other node then measures the landmarks and solves its own coordinate
against the fixed landmark positions.  Both solves are plain least squares
on relative error, via the in-house Levenberg-Marquardt loop below rather
than scipy's MINPACK wrappers: both ``leastsq`` and
``least_squares(method="lm")`` can return *different* minima for
byte-identical inputs depending on process heap state (observed directly:
same ``x0``, same residuals, two distinct fixed points across allocator
histories), and a single ULP of drift in a landmark solve cascades through
every dependent coordinate into different greedy-walk answers — which
breaks the repo's fixed-seed replay guarantee.  The loop here is ordinary
numpy on value-identical arrays with a fixed damping schedule, so its
result is a pure function of the inputs.

PIC's "fixed-point" placement strategy is the same computation with peers
as landmarks, so :class:`GnpEmbedding` doubles as PIC's embedding engine in
:mod:`repro.algorithms.pic`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.topology.oracle import LatencyOracle
from repro.util.errors import DataError
from repro.util.rng import make_rng
from repro.util.validate import require_positive


@dataclass(frozen=True)
class GnpConfig:
    """Embedding parameters."""

    dimensions: int = 5
    n_landmarks: int = 12

    def __post_init__(self) -> None:
        require_positive(self.dimensions, "dimensions")
        if self.n_landmarks <= self.dimensions:
            raise DataError(
                f"need more landmarks ({self.n_landmarks}) than dimensions "
                f"({self.dimensions})"
            )


def _lm_least_squares(
    residual_fn,
    jacobian_fn,
    x0: np.ndarray,
    max_iter: int,
) -> np.ndarray:
    """Deterministic Levenberg-Marquardt: minimise ``sum(residual_fn(x)**2)``.

    Fixed damping schedule, analytic Jacobian, no black-box solver state:
    for identical input values the iterate sequence — and therefore the
    returned point — is bit-identical whatever the allocator has been
    doing, which is the property the fixed-seed replay tests pin.
    """
    x = np.array(x0, dtype=float)
    residual = residual_fn(x)
    cost = float(residual @ residual)
    lam = 1e-3
    for _ in range(max_iter):
        jacobian = jacobian_fn(x)
        gradient = jacobian.T @ residual
        if float(np.max(np.abs(gradient), initial=0.0)) < 1e-12:
            break
        hessian = jacobian.T @ jacobian
        diag = np.diag_indices_from(hessian)
        improved = False
        relative_drop = 0.0
        while lam <= 1e12:
            damped = hessian.copy()
            damped[diag] += lam * np.maximum(hessian[diag], 1e-12)
            try:
                step = np.linalg.solve(damped, -gradient)
            except np.linalg.LinAlgError:
                lam *= 10.0
                continue
            candidate = x + step
            candidate_residual = residual_fn(candidate)
            candidate_cost = float(candidate_residual @ candidate_residual)
            if candidate_cost < cost:
                relative_drop = (cost - candidate_cost) / max(cost, 1e-300)
                x, residual, cost = candidate, candidate_residual, candidate_cost
                lam = max(lam * 0.3, 1e-12)
                improved = True
                break
            lam *= 10.0
        if not improved or relative_drop < 1e-12:
            break
    return x


def _solve_point(
    anchors: np.ndarray, rtts: np.ndarray, x0: np.ndarray
) -> np.ndarray:
    """Least-squares position of one point given distances to anchors."""
    weights = np.maximum(rtts, 1e-3)

    def residuals(x: np.ndarray) -> np.ndarray:
        predicted = np.linalg.norm(anchors - x[None, :], axis=1)
        return (predicted - rtts) / weights

    def jacobian(x: np.ndarray) -> np.ndarray:
        offsets = x[None, :] - anchors
        distances = np.maximum(
            np.linalg.norm(offsets, axis=1), 1e-12
        )
        return offsets / (distances * weights)[:, None]

    return _lm_least_squares(residuals, jacobian, x0, max_iter=50)


class GnpEmbedding:
    """Landmark-based coordinates for a set of member nodes."""

    def __init__(
        self,
        config: GnpConfig,
        landmark_ids: np.ndarray,
        landmark_positions: np.ndarray,
        positions: dict[int, np.ndarray],
    ) -> None:
        self.config = config
        self.landmark_ids = landmark_ids
        self.landmark_positions = landmark_positions
        self._positions = positions

    @classmethod
    def build(
        cls,
        oracle: LatencyOracle,
        member_ids: np.ndarray | list[int],
        config: GnpConfig | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> "GnpEmbedding":
        """Embed all ``member_ids`` (landmarks drawn from among them)."""
        config = config or GnpConfig()
        rng = make_rng(seed)
        members = np.asarray(member_ids, dtype=int)
        if members.size < config.n_landmarks:
            raise DataError(
                f"population {members.size} smaller than landmark count "
                f"{config.n_landmarks}"
            )
        landmarks = rng.choice(members, size=config.n_landmarks, replace=False)

        # Stage 1: landmark-landmark embedding (joint least squares).
        lm_rtts = np.array(
            [
                [oracle.latency_ms(int(a), int(b)) for b in landmarks]
                for a in landmarks
            ]
        )
        L, d = config.n_landmarks, config.dimensions
        x0 = rng.normal(0.0, np.median(lm_rtts) / 2.0 + 1e-3, size=L * d)

        iu = np.triu_indices(L, k=1)

        actual = lm_rtts[iu]
        weights = np.maximum(actual, 1e-3)
        pair_index = np.arange(iu[0].size)

        def landmark_residuals(flat: np.ndarray) -> np.ndarray:
            pos = flat.reshape(L, d)
            diff = pos[iu[0]] - pos[iu[1]]
            predicted = np.linalg.norm(diff, axis=1)
            return (predicted - actual) / weights

        def landmark_jacobian(flat: np.ndarray) -> np.ndarray:
            pos = flat.reshape(L, d)
            diff = pos[iu[0]] - pos[iu[1]]
            distances = np.maximum(np.linalg.norm(diff, axis=1), 1e-12)
            grad = diff / (distances * weights)[:, None]
            jacobian = np.zeros((iu[0].size, L * d))
            for axis in range(d):
                jacobian[pair_index, iu[0] * d + axis] = grad[:, axis]
                jacobian[pair_index, iu[1] * d + axis] = -grad[:, axis]
            return jacobian

        lm_positions = _lm_least_squares(
            landmark_residuals, landmark_jacobian, x0, max_iter=200
        ).reshape(L, d)

        # Stage 2: every member against the fixed landmarks.
        positions: dict[int, np.ndarray] = {}
        landmark_set = {int(l) for l in landmarks}
        for i, lm in enumerate(landmarks):
            positions[int(lm)] = lm_positions[i]
        centroid = lm_positions.mean(axis=0)
        for node in members:
            node = int(node)
            if node in landmark_set:
                continue
            rtts = np.array([oracle.latency_ms(node, int(l)) for l in landmarks])
            positions[node] = _solve_point(lm_positions, rtts, centroid)
        return cls(
            config=config,
            landmark_ids=landmarks,
            landmark_positions=lm_positions,
            positions=positions,
        )

    # -- queries -------------------------------------------------------------

    def position(self, node_id: int) -> np.ndarray:
        try:
            return self._positions[int(node_id)]
        except KeyError as exc:
            raise DataError(f"node {node_id} was not embedded") from exc

    def coordinate_distance(self, a: int, b: int) -> float:
        """Predicted RTT between two embedded nodes."""
        return float(np.linalg.norm(self.position(a) - self.position(b)))

    def place_external(self, rtts_to_landmarks: np.ndarray) -> np.ndarray:
        """Embed an outside node from its measured landmark RTTs.

        ``rtts_to_landmarks`` is parallel to :attr:`landmark_ids` — which
        may hold fewer than ``config.n_landmarks`` entries after departed
        landmarks were trimmed under membership churn.
        """
        rtts = np.asarray(rtts_to_landmarks, dtype=float)
        if rtts.shape != (len(self.landmark_ids),):
            raise DataError(
                f"expected {len(self.landmark_ids)} landmark RTTs, got {rtts.shape}"
            )
        return _solve_point(
            self.landmark_positions, rtts, self.landmark_positions.mean(axis=0)
        )
