"""Vivaldi network coordinates (Dabek, Cox, Kaashoek, Morris — SIGCOMM 2004).

Each node holds a Euclidean coordinate (optionally with a non-Euclidean
"height" modelling access-link delay) and a confidence-weighted error
estimate.  Processing a latency sample pulls/pushes the node along the unit
vector toward its neighbour with an adaptive timestep:

    w      = e_i / (e_i + e_j)
    es     = |‖x_i - x_j‖ - rtt| / rtt
    e_i    = es * ce * w + e_i * (1 - ce * w)
    delta  = cc * w
    x_i   += delta * (rtt - ‖x_i - x_j‖) * u(x_i - x_j)

This is the standard formulation with the paper's recommended constants
``cc = ce = 0.25``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.topology.oracle import LatencyOracle
from repro.util.errors import DataError
from repro.util.rng import make_rng
from repro.util.validate import require_in_range, require_positive


@dataclass(frozen=True)
class VivaldiConfig:
    """Vivaldi constants and driver parameters."""

    dimensions: int = 3
    cc: float = 0.25  # timestep constant
    ce: float = 0.25  # error-adaptation constant
    use_height: bool = True
    initial_error: float = 1.0
    min_height: float = 0.1

    def __post_init__(self) -> None:
        require_positive(self.dimensions, "dimensions")
        require_in_range(self.cc, "cc", 0.0, 1.0)
        require_in_range(self.ce, "ce", 0.0, 1.0)


class VivaldiSystem:
    """Coordinates and errors for a set of nodes, updated sample by sample."""

    def __init__(
        self,
        node_ids: np.ndarray | list[int],
        config: VivaldiConfig | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.config = config or VivaldiConfig()
        self.node_ids = np.asarray(node_ids, dtype=int)
        if self.node_ids.size < 2:
            raise DataError("Vivaldi needs at least two nodes")
        rng = make_rng(seed)
        self._index = {int(n): i for i, n in enumerate(self.node_ids)}
        n = self.node_ids.size
        # Tiny random placement breaks symmetry (all-zero coordinates would
        # make the unit vector undefined).
        self.positions = rng.normal(0.0, 0.01, size=(n, self.config.dimensions))
        self.heights = np.full(n, self.config.min_height)
        self.errors = np.full(n, self.config.initial_error)
        self._rng = rng
        self.samples_processed = 0

    # -- geometry -----------------------------------------------------------

    def _row(self, node_id: int) -> int:
        try:
            return self._index[int(node_id)]
        except KeyError as exc:
            raise DataError(f"unknown Vivaldi node {node_id}") from exc

    def coordinate_distance(self, a: int, b: int) -> float:
        """Predicted RTT between two nodes from their coordinates."""
        ia, ib = self._row(a), self._row(b)
        euclid = float(np.linalg.norm(self.positions[ia] - self.positions[ib]))
        if self.config.use_height:
            return euclid + float(self.heights[ia] + self.heights[ib])
        return euclid

    def distances_to_point(
        self, position: np.ndarray, height: float = 0.0
    ) -> np.ndarray:
        """Predicted RTTs from every node to an arbitrary coordinate."""
        euclid = np.linalg.norm(self.positions - position[None, :], axis=1)
        if self.config.use_height:
            return euclid + self.heights + height
        return euclid

    # -- learning ------------------------------------------------------------

    def observe(self, a: int, b: int, rtt_ms: float) -> None:
        """Update node ``a``'s coordinate from one RTT sample to ``b``."""
        if rtt_ms <= 0:
            return
        cfg = self.config
        ia, ib = self._row(a), self._row(b)
        delta_vec = self.positions[ia] - self.positions[ib]
        euclid = float(np.linalg.norm(delta_vec))
        predicted = euclid + (
            self.heights[ia] + self.heights[ib] if cfg.use_height else 0.0
        )
        if euclid < 1e-9:
            direction = self._rng.normal(size=cfg.dimensions)
            direction /= np.linalg.norm(direction)
            euclid_dir = direction
        else:
            euclid_dir = delta_vec / euclid

        w = self.errors[ia] / (self.errors[ia] + self.errors[ib] + 1e-12)
        relative_error = abs(predicted - rtt_ms) / rtt_ms
        self.errors[ia] = relative_error * cfg.ce * w + self.errors[ia] * (
            1.0 - cfg.ce * w
        )
        self.errors[ia] = float(np.clip(self.errors[ia], 0.01, 5.0))

        force = cfg.cc * w * (rtt_ms - predicted)
        self.positions[ia] += force * euclid_dir
        if cfg.use_height and euclid > 1e-9:
            self.heights[ia] = max(
                cfg.min_height, self.heights[ia] + force * (self.heights[ia] / predicted)
            )
        self.samples_processed += 1

    def run(
        self,
        oracle: LatencyOracle,
        rounds: int = 30,
        neighbors_per_round: int = 8,
    ) -> None:
        """Drive the system with random-neighbour sampling.

        Each round, every node observes RTTs to ``neighbors_per_round``
        random peers — the standard simulation discipline for Vivaldi
        convergence studies.
        """
        n = self.node_ids.size
        for _ in range(rounds):
            order = self._rng.permutation(n)
            for row in order:
                node = int(self.node_ids[row])
                partners = self._rng.choice(n, size=neighbors_per_round, replace=False)
                for partner_row in partners:
                    if partner_row == row:
                        continue
                    partner = int(self.node_ids[partner_row])
                    self.observe(node, partner, oracle.latency_ms(node, partner))

    # -- placement of outside nodes -----------------------------------------

    def place_external(
        self,
        rtts: dict[int, float],
        iterations: int = 64,
    ) -> tuple[np.ndarray, float]:
        """Fit a coordinate for a node outside the system.

        ``rtts`` maps member node ids to measured RTTs.  Runs the same
        spring relaxation against the fixed member coordinates (how PIC and
        Vivaldi place newly joining nodes).  Returns (position, height).
        """
        if not rtts:
            raise DataError("need at least one RTT sample to place a node")
        cfg = self.config
        position = np.mean(
            [self.positions[self._row(m)] for m in rtts], axis=0
        ) + self._rng.normal(0.0, 0.01, size=cfg.dimensions)
        height = cfg.min_height
        error = cfg.initial_error
        members = list(rtts)
        for _ in range(iterations):
            m = members[int(self._rng.integers(len(members)))]
            rtt = rtts[m]
            if rtt <= 0:
                continue
            im = self._row(m)
            delta_vec = position - self.positions[im]
            euclid = float(np.linalg.norm(delta_vec))
            predicted = euclid + (height + self.heights[im] if cfg.use_height else 0.0)
            direction = (
                delta_vec / euclid
                if euclid > 1e-9
                else self._rng.normal(size=cfg.dimensions)
            )
            w = error / (error + self.errors[im] + 1e-12)
            relative_error = abs(predicted - rtt) / rtt
            error = float(
                np.clip(relative_error * cfg.ce * w + error * (1 - cfg.ce * w), 0.01, 5.0)
            )
            force = cfg.cc * w * (rtt - predicted)
            position = position + force * direction
        return position, height
