"""repro — reproduction of "On The Difficulty of Finding the Nearest Peer
in P2P Systems" (Vishnumurthy & Francis, IMC 2008).

The library implements the paper's full stack: a router-level synthetic
Internet with the last-hop structure that causes the **clustering
condition**, the Section 3 measurement pipelines (rockettrace, King,
TCP-ping), a faithful Meridian plus seven latency-only baselines, the
Section 5 mechanisms (UCL and IP-prefix key-value maps over a Chord DHT,
multicast, registries), and one driver per figure/table of the evaluation.

Quick start::

    from repro import SyntheticInternet, NearestPeerFinder

    internet = SyntheticInternet.generate(seed=7)
    finder = NearestPeerFinder(internet, seed=7)
    finder.join_all(internet.peer_ids[:300])
    result = finder.find(internet.peer_ids[300])
    print(result.stage, result.found, result.latency_ms)

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for
paper-vs-measured results.
"""

from repro.core.clustering import ClusterReport, detect_clusters
from repro.core.finder import NearestPeerFinder
from repro.core.opportunity import opportunity_cost
from repro.harness import (
    AggregateStats,
    DaemonSpec,
    FaultSpec,
    DaemonTrialRecord,
    NoiseSpec,
    QueryEngine,
    SamplingSpec,
    Scenario,
    ScenarioResult,
    TrialRecord,
    get_scenario,
    list_scenarios,
    register_scenario,
)
from repro.latency.builder import ClusteredWorld, build_clustered_oracle
from repro.latency.matrix import LatencyMatrix
from repro.meridian.overlay import MeridianConfig, MeridianOverlay
from repro.meridian.query import closest_node_query
from repro.meridian.simulator import run_meridian_trial
from repro.topology.clustered import ClusteredConfig, ClusteredTopology
from repro.topology.internet import InternetConfig, SyntheticInternet
from repro.topology.oracle import (
    CountingOracle,
    LatencyOracle,
    MatrixOracle,
    NoisyOracle,
)

__version__ = "1.0.0"

__all__ = [
    "SyntheticInternet",
    "InternetConfig",
    "ClusteredConfig",
    "ClusteredTopology",
    "ClusteredWorld",
    "build_clustered_oracle",
    "LatencyMatrix",
    "LatencyOracle",
    "MatrixOracle",
    "NoisyOracle",
    "CountingOracle",
    "MeridianConfig",
    "MeridianOverlay",
    "closest_node_query",
    "run_meridian_trial",
    "NearestPeerFinder",
    "detect_clusters",
    "ClusterReport",
    "opportunity_cost",
    "AggregateStats",
    "DaemonSpec",
    "FaultSpec",
    "DaemonTrialRecord",
    "NoiseSpec",
    "QueryEngine",
    "SamplingSpec",
    "Scenario",
    "ScenarioResult",
    "TrialRecord",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
    "__version__",
]
