"""Per-query spans on simulated time.

A :class:`Span` is one closed interval ``[start_ms, end_ms]`` of the
daemon's simulated clock, named for the phase it covers:

* ``query`` — the root: one per query, ``[arrival, answer]``, parent of
  every other span of that query (``seq`` 0);
* ``queue_wait`` — arrival to service start (zero-length when the entry
  node had a free slot);
* ``dispatch`` — the zero-length service-start marker carrying the
  admission attributes (entry node, membership size, epoch);
* ``probe_round`` — one per probe fan-out, open at dispatch and closed
  when the plan actually resumes, so faults, retransmit ladders, relay
  detours and skewed timeout waits are all inside the measured interval;
* ``plan_retry`` — the backoff gap between a fully-faulted plan attempt
  and its restart;
* ``maintenance_flush`` — index repair, tagged with the maintenance
  ledger's event ids (``query`` is ``None``: repair belongs to the
  membership process, not to any one query).

Within one query the non-root spans tile ``[arrival, finish]`` exactly —
each span ends on the float the next one starts on — which is what lets
``repro-trace`` account every simulated millisecond of a query's time to
answer to a phase.

The tracer is **passive**: every number on a span comes from the event
loop's clock or the driver's own counters.  No oracle reads, no rng
draws (statically pinned by the ``obs-passivity`` lint rule), so tracing
cannot perturb the run it observes.  :func:`sort_spans` defines the one
canonical stream order, making merged traces bit-identical across
stepper choice and shard count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry
from repro.util.errors import SimulationError

#: Span names, in rendering-rank order (root first).
SPAN_NAMES = (
    "query",
    "queue_wait",
    "dispatch",
    "probe_round",
    "plan_retry",
    "maintenance_flush",
)


@dataclass(slots=True)
class Span:
    """One named interval of simulated time (see module docstring).

    A plain slots dataclass rather than a frozen one: spans are created
    on the daemon's hot path (one per round, per wait, per flush), and
    ``object.__setattr__``-based frozen construction costs enough there
    to show up in the traced-run wall-clock ratio the perf smoke gates.
    Nothing mutates a span after the tracer appends it.
    """

    name: str
    start_ms: float
    end_ms: float
    #: Global query index, or ``None`` for maintenance spans.
    query: int | None = None
    #: Ordinal within the query (0 = the root ``query`` span); for
    #: maintenance spans, the ordinal within the maintenance stream.
    seq: int = 0
    #: ``seq`` of the parent span (0 for per-query children, ``None``
    #: for roots and maintenance spans).
    parent: int | None = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


def sort_spans(spans: list[Span]) -> list[Span]:
    """The canonical stream order: time, then query, then per-query seq.

    Every key component is invariant to stepper choice and shard layout
    (span times come from the pinned timeline, ``seq`` from the job's own
    event order), so sorting makes the merged stream bit-identical
    however the run was executed.  Maintenance spans (``query is None``)
    sort before queries at equal times.
    """
    return sorted(
        spans,
        key=lambda s: (s.start_ms, -1 if s.query is None else s.query, s.seq),
    )


class Tracer:
    """Collects spans (and hosts the run's :class:`MetricsRegistry`).

    One tracer per daemon instance; the sharded driver merges the shard
    tracers' streams with :func:`sort_spans`.  Per-query spans are opened
    at dispatch and closed when the *driver's next event for that query
    actually fires*, so span boundaries are loop timestamps — never
    recomputed arithmetic that could drift from the timeline.
    """

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.metrics = MetricsRegistry()
        #: Next child ``seq`` per query (0 is reserved for the root).
        self._job_seq: dict[int, int] = {}
        #: One open (name, start_ms, attrs) per query, closed by the next
        #: driver event for that query.
        self._open: dict[int, tuple[str, float, dict]] = {}
        self._maintenance_seq = 0

    # -- per-query spans ---------------------------------------------------

    def _next_seq(self, query: int) -> int:
        seq = self._job_seq.get(query, 1)
        self._job_seq[query] = seq + 1
        return seq

    def emit(
        self, name: str, query: int, start_ms: float, end_ms: float, **attrs
    ) -> None:
        """Record one closed child span of ``query``.

        Hot path (one call per wait/round/retry): the loop clock already
        hands us floats and the driver an int index, so no defensive
        conversions — every avoidable microsecond here widens the margin
        on the perf smoke's trace-on/off wall-clock gate.
        """
        query = int(query)
        seq = self._job_seq.get(query, 1)
        self._job_seq[query] = seq + 1
        self.spans.append(Span(name, start_ms, end_ms, query, seq, 0, attrs))

    def open(self, query: int, name: str, start_ms: float, **attrs) -> None:
        """Open a span whose end is the query's next driver event."""
        query = int(query)
        if query in self._open:
            raise SimulationError(
                f"query {query} already has an open {self._open[query][0]!r} "
                f"span; cannot open {name!r}"
            )
        self._open[query] = (name, float(start_ms), attrs)

    def close(self, query: int, end_ms: float) -> None:
        """Close the query's open span at ``end_ms`` (no-op if none open)."""
        query = int(query)
        pending = self._open.pop(query, None)
        if pending is None:
            return
        name, start_ms, attrs = pending
        seq = self._job_seq.get(query, 1)
        self._job_seq[query] = seq + 1
        self.spans.append(Span(name, start_ms, end_ms, query, seq, 0, attrs))

    def root(
        self, query: int, start_ms: float, end_ms: float, **attrs
    ) -> None:
        """Record the query's root span (``seq`` 0, parent of the rest)."""
        query = int(query)
        if query in self._open:
            raise SimulationError(
                f"query {query} finished with an open "
                f"{self._open[query][0]!r} span"
            )
        self.spans.append(
            Span("query", float(start_ms), float(end_ms), query, 0, None, attrs)
        )

    # -- maintenance spans -------------------------------------------------

    def maintenance(self, start_ms: float, end_ms: float, **attrs) -> None:
        """Record one ``maintenance_flush`` span (no owning query)."""
        self.spans.append(
            Span(
                "maintenance_flush",
                float(start_ms),
                float(end_ms),
                None,
                self._maintenance_seq,
                None,
                attrs,
            )
        )
        self._maintenance_seq += 1

    # -- stream access -----------------------------------------------------

    def sorted_spans(self) -> list[Span]:
        """All spans in the canonical stream order."""
        if self._open:
            raise SimulationError(
                f"{len(self._open)} spans still open: "
                f"{sorted(self._open)[:8]}"
            )
        return sort_spans(self.spans)


def merge_span_streams(
    per_query: list[Span], maintenance: list[Span]
) -> list[Span]:
    """Reunite shard span streams into one canonical stream.

    ``per_query`` concatenates every shard's query spans (queries are
    partitioned, so the union is exact); ``maintenance`` is *one*
    replica's maintenance stream (repair is replicated work — every shard
    replays every membership event identically, so any single replica's
    stream is the global one and summing would double count).
    """
    return sort_spans(list(per_query) + list(maintenance))


def spans_by_query(spans: list[Span]) -> dict[int, list[Span]]:
    """Group a stream's per-query spans, each group in ``seq`` order."""
    grouped: dict[int, list[Span]] = {}
    for span in spans:
        if span.query is not None:
            grouped.setdefault(span.query, []).append(span)
    for group in grouped.values():
        group.sort(key=lambda s: s.seq)
    return grouped
