"""JSONL trace export: dump, load, and schema validation.

One trace file is a sequence of JSON objects, one per line:

* a ``{"type": "meta", ...}`` header — scheme name, query count,
  makespan, schema ``version`` — then
* one ``{"type": "span", ...}`` line per span, in the canonical stream
  order (:func:`repro.obs.trace.sort_spans`).

A file may concatenate several traces (one meta line starts each block),
which is how multi-scheme comparisons travel as a single artifact for
``repro-trace --summary``.  :func:`validate_trace` is the schema gate CI
runs on exported files: structural checks (required keys, types, one
root per query, children nested and non-overlapping) rather than a
external-schema dependency, so it needs nothing outside the stdlib.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.obs.trace import Span, sort_spans, spans_by_query
from repro.util.errors import DataError

SCHEMA_VERSION = 1

_SPAN_NAMES = frozenset(
    {
        "query",
        "queue_wait",
        "dispatch",
        "probe_round",
        "plan_retry",
        "maintenance_flush",
    }
)


def _jsonable(value):
    """Coerce numpy scalars/arrays so span attrs serialise cleanly."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"span attr not JSON-serialisable: {value!r}")


@dataclass
class TraceDump:
    """One loaded trace block: its meta header plus its spans."""

    meta: dict
    spans: list[Span] = field(default_factory=list)


def span_to_obj(span: Span) -> dict:
    return {
        "type": "span",
        "name": span.name,
        "query": span.query,
        "seq": span.seq,
        "parent": span.parent,
        "start_ms": span.start_ms,
        "end_ms": span.end_ms,
        "attrs": span.attrs,
    }


def span_from_obj(obj: dict) -> Span:
    return Span(
        name=obj["name"],
        start_ms=float(obj["start_ms"]),
        end_ms=float(obj["end_ms"]),
        query=obj.get("query"),
        seq=int(obj.get("seq", 0)),
        parent=obj.get("parent"),
        attrs=dict(obj.get("attrs", {})),
    )


def dump_trace_jsonl(path, spans: list[Span], meta: dict, mode: str = "w") -> None:
    """Write one trace block (meta + spans) to ``path``.

    ``mode="a"`` appends another block to an existing file — the
    multi-scheme comparison artifact.
    """
    header = {"type": "meta", "version": SCHEMA_VERSION, **meta}
    with open(path, mode, encoding="utf-8") as fh:
        fh.write(json.dumps(header, default=_jsonable) + "\n")
        for span in sort_spans(list(spans)):
            fh.write(json.dumps(span_to_obj(span), default=_jsonable) + "\n")


def load_trace_jsonl(path) -> list[TraceDump]:
    """Load every trace block of a JSONL file."""
    dumps: list[TraceDump] = []
    with open(path, encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            kind = obj.get("type")
            if kind == "meta":
                dumps.append(TraceDump(meta=obj))
            elif kind == "span":
                if not dumps:
                    raise DataError(
                        f"{path}:{line_no}: span before any meta header"
                    )
                dumps[-1].spans.append(span_from_obj(obj))
            else:
                raise DataError(
                    f"{path}:{line_no}: unknown record type {kind!r}"
                )
    if not dumps:
        raise DataError(f"{path}: no trace blocks found")
    return dumps


def validate_trace(path) -> list[str]:
    """Schema-validate a JSONL trace file; returns problems (empty = ok).

    Checks both line shape (required keys, value types, known span
    names) and stream structure (every query has exactly one root span,
    children carry ``parent == 0``, nest inside their root, and tile it
    without overlaps).
    """
    problems: list[str] = []
    try:
        dumps = load_trace_jsonl(path)
    except (DataError, json.JSONDecodeError, KeyError) as exc:
        return [f"unreadable trace: {exc}"]
    for block_no, dump in enumerate(dumps):
        where = f"block {block_no}"
        for key in ("version", "scheme", "n_queries"):
            if key not in dump.meta:
                problems.append(f"{where}: meta missing {key!r}")
        if dump.meta.get("version") != SCHEMA_VERSION:
            problems.append(
                f"{where}: schema version {dump.meta.get('version')!r} "
                f"!= {SCHEMA_VERSION}"
            )
        for span in dump.spans:
            if span.name not in _SPAN_NAMES:
                problems.append(f"{where}: unknown span name {span.name!r}")
            if not (
                np.isfinite(span.start_ms)
                and np.isfinite(span.end_ms)
                and span.end_ms >= span.start_ms
            ):
                problems.append(
                    f"{where}: span {span.name!r} has bad interval "
                    f"[{span.start_ms}, {span.end_ms}]"
                )
            if span.name == "maintenance_flush":
                if span.query is not None:
                    problems.append(
                        f"{where}: maintenance span owned by query "
                        f"{span.query}"
                    )
            elif span.query is None:
                problems.append(f"{where}: {span.name!r} span without a query")
        problems.extend(
            f"{where}: {issue}" for issue in check_nesting(dump.spans)
        )
    return problems


def check_nesting(spans: list[Span]) -> list[str]:
    """Structural invariants of one span stream (see :func:`validate_trace`)."""
    issues: list[str] = []
    for query, group in sorted(spans_by_query(spans).items()):
        roots = [s for s in group if s.seq == 0]
        if len(roots) != 1 or roots[0].name != "query":
            issues.append(f"query {query}: expected exactly one root span")
            continue
        root = roots[0]
        children = [s for s in group if s.seq != 0]
        seqs = [s.seq for s in children]
        if len(set(seqs)) != len(seqs):
            issues.append(f"query {query}: duplicate child seq")
        previous_end: float | None = None
        for span in children:
            if span.parent != 0:
                issues.append(
                    f"query {query}: span {span.seq} parent "
                    f"{span.parent!r} != 0"
                )
            if span.start_ms < root.start_ms or span.end_ms > root.end_ms:
                issues.append(
                    f"query {query}: span {span.seq} ({span.name}) "
                    f"escapes its root"
                )
            if previous_end is not None and span.start_ms < previous_end:
                issues.append(
                    f"query {query}: span {span.seq} ({span.name}) "
                    f"overlaps its predecessor"
                )
            previous_end = span.end_ms
    return issues
