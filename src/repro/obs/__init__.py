"""Simulated-time observability: per-query spans, metrics, exporters.

The daemon's answer to "which phase of which query paid for that p99":

* :mod:`repro.obs.trace` — :class:`~repro.obs.trace.Span` /
  :class:`~repro.obs.trace.Tracer`, per-query spans on **simulated**
  time (``queue_wait`` / ``dispatch`` / ``probe_round`` / ``plan_retry``
  plus ledger-tagged ``maintenance_flush`` spans);
* :mod:`repro.obs.metrics` — :class:`~repro.obs.metrics.MetricsRegistry`
  of breakpoint-backed counters/gauges and fixed-bucket histograms,
  sampled on simulated-time intervals into a
  :class:`~repro.obs.metrics.TimeSeriesBlock`;
* :mod:`repro.obs.export` — JSONL trace dump / load / schema validation;
* :mod:`repro.obs.cli` — the ``repro-trace`` console script (ASCII
  timeline, critical-path view, ``--summary`` phase breakdown).

The whole layer is *passive*: it reads the event loop's clock and the
driver's own bookkeeping, never the latency oracle, the probe channels
or any random stream — so enabling it is bit-identical for answers,
time-to-answer and maintenance bills (the ``obs-passivity`` repro-lint
rule pins this statically, the trace tests dynamically).
"""

from repro.obs.metrics import MetricsRegistry, TimeSeriesBlock
from repro.obs.trace import Span, Tracer, sort_spans

__all__ = [
    "MetricsRegistry",
    "Span",
    "TimeSeriesBlock",
    "Tracer",
    "sort_spans",
]
