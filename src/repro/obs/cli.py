"""``repro-trace``: render JSONL daemon traces as ASCII timelines.

Three views over files written by :func:`repro.obs.export.dump_trace_jsonl`:

* the default **timeline** — one query's spans as a scaled bar chart on
  simulated time (slowest round highlighted, retry chains annotated),
  with the critical-path accounting line that proves the phases tile the
  query's time to answer;
* ``--summary`` — the **phase breakdown** table: p50/p95/p99 simulated
  ms per phase per scheme, across every trace block given;
* ``--validate`` — the schema gate (exit 1 on any problem), the hook CI
  runs on exported artifacts.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis.tables import format_table
from repro.obs.export import TraceDump, load_trace_jsonl, validate_trace
from repro.obs.trace import Span, spans_by_query

#: Phases the summary decomposes time-to-answer into, in report order.
PHASES = ("queue_wait", "probe_round", "plan_retry")


def _query_phases(children: list[Span]) -> dict[str, float]:
    """Total simulated ms per phase for one query's child spans."""
    totals = dict.fromkeys(PHASES, 0.0)
    for span in children:
        if span.name in totals:
            totals[span.name] += span.duration_ms
    return totals


def slowest_query(dump: TraceDump) -> int:
    """The query index with the largest root-span duration."""
    best_query, best_tta = -1, -1.0
    for query, group in sorted(spans_by_query(dump.spans).items()):
        root = next((s for s in group if s.seq == 0), None)
        if root is not None and root.duration_ms > best_tta:
            best_query, best_tta = query, root.duration_ms
    if best_query < 0:
        raise ValueError("trace block holds no query spans")
    return best_query


def _bar(start: float, end: float, t0: float, t1: float, width: int) -> str:
    """A fixed-width ASCII bar for ``[start, end]`` inside ``[t0, t1]``."""
    span = max(t1 - t0, 1e-12)
    lo = min(int(round((start - t0) / span * width)), width - 1)
    if end <= start:  # zero-length marker (dispatch, empty rounds)
        return " " * lo + "."
    hi = max(int(round((end - t0) / span * width)), lo + 1)
    return " " * lo + "#" * (hi - lo)


def _span_note(span: Span) -> str:
    attrs = span.attrs
    bits: list[str] = []
    if span.name == "probe_round":
        bits.append(f"probes={attrs.get('probes', '?')}")
        for key, tag in (
            ("retransmitted", "retx"),
            ("dropped", "drop"),
            ("timed_out", "tmo"),
            ("relayed", "relay"),
        ):
            if attrs.get(key):
                bits.append(f"{tag}={attrs[key]}")
    elif span.name == "plan_retry":
        bits.append(f"attempt={attrs.get('attempt', '?')}")
    elif span.name == "dispatch":
        bits.append(f"entry={attrs.get('entry', '?')}")
    elif span.name == "maintenance_flush":
        ids = attrs.get("event_ids", [])
        bits.append(f"events={list(ids)}")
        bits.append(f"probes={attrs.get('probes', '?')}")
    return " ".join(bits)


def render_timeline(dump: TraceDump, query: int | None = None, width: int = 48) -> str:
    """One query's spans as a scaled simulated-time bar chart."""
    if query is None:
        query = slowest_query(dump)
    group = spans_by_query(dump.spans).get(int(query))
    if not group:
        raise ValueError(f"query {query} not in trace")
    root = next(s for s in group if s.seq == 0)
    children = [s for s in group if s.seq != 0]
    t0, t1 = root.start_ms, root.end_ms
    rounds = [s for s in children if s.name == "probe_round"]
    slowest = max(rounds, key=lambda s: s.duration_ms, default=None)
    scheme = dump.meta.get("scheme", "?")
    queue = sum(s.duration_ms for s in children if s.name == "queue_wait")
    retry_ms = sum(s.duration_ms for s in children if s.name == "plan_retry")
    lines = [
        (
            f"query {query} · {scheme} · tta {root.duration_ms:.2f} ms "
            f"(queue {queue:.2f} + rounds "
            f"{sum(s.duration_ms for s in rounds):.2f} + retry-gaps "
            f"{retry_ms:.2f}) · {len(rounds)} rounds · "
            f"{root.attrs.get('retries', 0)} retries"
        ),
        f"t0 = {t0:.2f} ms simulated (arrival)",
        "",
    ]
    round_no = 0
    for span in children:
        label = span.name
        if span.name == "probe_round":
            round_no += 1
            label = f"probe_round #{round_no}"
        mark = "  <-- slowest round" if span is slowest else ""
        note = _span_note(span)
        lines.append(
            f"{label:<16} {span.start_ms - t0:>9.2f} {span.duration_ms:>9.2f}  "
            f"|{_bar(span.start_ms, span.end_ms, t0, t1, width):<{width}}|"
            f"{('  ' + note) if note else ''}{mark}"
        )
    covered = sum(s.duration_ms for s in children if s.name != "dispatch")
    lines.append("")
    lines.append(
        f"critical path: phases cover {covered:.2f} ms of "
        f"{root.duration_ms:.2f} ms tta "
        f"({'exact tiling' if abs(covered - root.duration_ms) < 1e-6 else 'GAP'})"
    )
    return "\n".join(lines)


def render_summary(dumps: list[TraceDump]) -> str:
    """p50/p95/p99 simulated ms per phase per scheme, one table."""
    headers = ["scheme", "phase", "p50 (ms)", "p95 (ms)", "p99 (ms)", "share"]
    rows: list[list[str]] = []
    for dump in dumps:
        scheme = dump.meta.get("scheme", "?")
        grouped = spans_by_query(dump.spans)
        if not grouped:
            continue
        ttas = []
        per_phase: dict[str, list[float]] = {name: [] for name in PHASES}
        for _query, group in sorted(grouped.items()):
            root = next(s for s in group if s.seq == 0)
            ttas.append(root.duration_ms)
            totals = _query_phases([s for s in group if s.seq != 0])
            for name in PHASES:
                per_phase[name].append(totals[name])
        tta = np.asarray(ttas)
        mean_tta = float(tta.mean()) if tta.size else 0.0
        for name in (*PHASES, "tta"):
            values = tta if name == "tta" else np.asarray(per_phase[name])
            share = (
                float(values.mean()) / mean_tta if mean_tta > 0 else 0.0
            )
            rows.append(
                [
                    scheme,
                    name,
                    f"{np.percentile(values, 50):.1f}",
                    f"{np.percentile(values, 95):.1f}",
                    f"{np.percentile(values, 99):.1f}",
                    f"{share:.0%}" if name != "tta" else "100%",
                ]
            )
    return format_table(headers, rows)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Render simulated-time daemon traces (JSONL).",
    )
    parser.add_argument("files", nargs="+", help="JSONL trace files")
    parser.add_argument(
        "--query", type=int, default=None,
        help="query index to render (default: the slowest query)",
    )
    parser.add_argument(
        "--summary", action="store_true",
        help="phase-breakdown table across all trace blocks",
    )
    parser.add_argument(
        "--validate", action="store_true",
        help="schema-validate the files; exit 1 on any problem",
    )
    parser.add_argument(
        "--width", type=int, default=48, help="timeline bar width (chars)"
    )
    args = parser.parse_args(argv)
    if args.validate:
        status = 0
        for path in args.files:
            problems = validate_trace(path)
            if problems:
                status = 1
                for problem in problems:
                    print(f"{path}: {problem}")
            else:
                print(f"{path}: OK")
        return status
    dumps = [dump for path in args.files for dump in load_trace_jsonl(path)]
    if args.summary:
        print(render_summary(dumps))
        return 0
    print(render_timeline(dumps[0], query=args.query, width=args.width))
    return 0


if __name__ == "__main__":  # pragma: no cover - console entry
    sys.exit(main())
