"""Breakpoint-backed metrics sampled on simulated-time intervals.

The daemon's hot path already records the exact change-points of its
load curves — (time, ±k) breakpoints for queue depth and in-flight
probes (kept for cross-shard peak merging).  The registry generalises
that representation: a :class:`Counter` or :class:`Gauge` is a list of
timestamped deltas, and *sampling* is a single vectorised
sort/cumsum/searchsorted pass at finalize — nothing runs on the event
loop, so metrics collection adds no loop events, consumes no rng, and
cannot perturb the timeline it measures.

Because a sampled value at time ``t`` is just the integer sum of all
deltas with timestamp ``<= t``, sampling commutes with concatenating
shard breakpoint streams: the merged registry's series are bit-identical
to the unsharded run's (the shard-invariance tests pin it).

:class:`Histogram` is the fixed-bucket distribution companion (flush
sizes, round fan-outs); :class:`TimeSeriesBlock` is the JSON-friendly
sampled block a :class:`~repro.harness.results.DaemonTrialRecord`
carries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.errors import ConfigurationError, DataError


class _BreakpointSeries:
    """Timestamped integer deltas; values reconstructed by prefix sum."""

    def __init__(self) -> None:
        self._times: list[np.ndarray] = []
        self._deltas: list[np.ndarray] = []

    def add(self, time_ms: float, delta: int) -> None:
        """Record one change-point (cheap: two 1-element array appends)."""
        if delta:
            self._times.append(np.array([float(time_ms)]))
            self._deltas.append(np.array([int(delta)], dtype=np.int64))

    def extend(self, times_ms: np.ndarray, deltas: np.ndarray) -> None:
        """Adopt a pre-recorded breakpoint stream (e.g. the stepper's)."""
        times_ms = np.asarray(times_ms, dtype=float)
        deltas = np.asarray(deltas, dtype=np.int64)
        if times_ms.shape != deltas.shape:
            raise DataError(
                f"breakpoint arrays disagree: {times_ms.shape} vs {deltas.shape}"
            )
        if times_ms.size:
            self._times.append(times_ms)
            self._deltas.append(deltas)

    def _compiled(self) -> tuple[np.ndarray, np.ndarray]:
        if not self._times:
            return np.zeros(0), np.zeros(0, dtype=np.int64)
        times = np.concatenate(self._times)
        deltas = np.concatenate(self._deltas)
        order = np.argsort(times, kind="stable")
        return times[order], np.cumsum(deltas[order])

    def series_at(self, sample_times_ms: np.ndarray) -> np.ndarray:
        """Value at each sample instant (deltas at exactly ``t`` included).

        Integer prefix sums are order-independent within a timestamp, so
        the result does not depend on how tied breakpoints interleave —
        the property that makes shard-merged series exact.
        """
        times, running = self._compiled()
        sample_times_ms = np.asarray(sample_times_ms, dtype=float)
        out = np.zeros(sample_times_ms.size, dtype=np.int64)
        if running.size:
            idx = np.searchsorted(times, sample_times_ms, side="right")
            np.copyto(out, running[idx - 1], where=idx > 0)
        return out

    def _adopt(self, other: "_BreakpointSeries") -> None:
        self._times.extend(other._times)
        self._deltas.extend(other._deltas)


class Counter(_BreakpointSeries):
    """Monotone event count over simulated time (drops, retransmits…)."""

    def inc(self, time_ms: float, by: int = 1) -> None:
        if by < 0:
            raise ConfigurationError(f"counter increment must be >= 0: {by}")
        self.add(time_ms, by)

    @property
    def total(self) -> int:
        _, running = self._compiled()
        return int(running[-1]) if running.size else 0


class Gauge(_BreakpointSeries):
    """Signed level (queue depth, in-flight probes): ±k change-points."""


class Histogram:
    """Fixed-bucket distribution: ``len(edges) + 1`` counts, last = overflow.

    Bucket ``i`` holds values in ``[edges[i-1], edges[i])`` (bucket 0 is
    ``(-inf, edges[0])``); merging requires identical edges.
    """

    def __init__(self, edges: np.ndarray | list[float]) -> None:
        self.edges = np.asarray(edges, dtype=float)
        if self.edges.size == 0 or np.any(np.diff(self.edges) <= 0):
            raise ConfigurationError(
                f"histogram edges must be non-empty and increasing: {edges}"
            )
        self.counts = np.zeros(self.edges.size + 1, dtype=np.int64)

    def observe(self, value: float) -> None:
        self.counts[int(np.searchsorted(self.edges, value, side="right"))] += 1

    def observe_many(self, values: np.ndarray | list[float]) -> None:
        values = np.asarray(values, dtype=float)
        if values.size:
            idx = np.searchsorted(self.edges, values, side="right")
            np.add.at(self.counts, idx, 1)

    @property
    def total(self) -> int:
        return int(self.counts.sum())


class MetricsRegistry:
    """Named counters / gauges / histograms for one daemon run.

    Instruments are created on first use and listed in creation order;
    iteration and export sort by name so the registry's shape never
    depends on instrumentation order.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter()
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._gauges[name] = Gauge()
        return self._gauges[name]

    def histogram(self, name: str, edges: np.ndarray | list[float]) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(edges)
        return self._histograms[name]

    def sample(self, sample_times_ms: np.ndarray) -> "TimeSeriesBlock":
        """Evaluate every series at the given simulated instants."""
        sample_times_ms = np.asarray(sample_times_ms, dtype=float)
        series = {
            name: instrument.series_at(sample_times_ms)
            for name, instrument in sorted(
                {**self._counters, **self._gauges}.items()
            )
        }
        histograms = {
            name: {
                "edges": hist.edges.copy(),
                "counts": hist.counts.copy(),
            }
            for name, hist in sorted(self._histograms.items())
        }
        return TimeSeriesBlock(
            times_ms=sample_times_ms, series=series, histograms=histograms
        )

    @classmethod
    def merge(cls, registries: list["MetricsRegistry"]) -> "MetricsRegistry":
        """Pool shard registries: breakpoints concatenate, buckets sum."""
        merged = cls()
        for registry in registries:
            for name, counter in registry._counters.items():
                merged.counter(name)._adopt(counter)
            for name, gauge in registry._gauges.items():
                merged.gauge(name)._adopt(gauge)
            for name, hist in registry._histograms.items():
                target = merged.histogram(name, hist.edges)
                if not np.array_equal(target.edges, hist.edges):
                    raise DataError(
                        f"histogram {name!r} bucket edges disagree across "
                        "registries"
                    )
                target.counts += hist.counts
        return merged


@dataclass
class TimeSeriesBlock:
    """The sampled metrics block on a daemon trial record.

    ``series[name][i]`` is the instrument's value at ``times_ms[i]``;
    histograms are carried as ``{"edges": ..., "counts": ...}`` pairs.
    """

    times_ms: np.ndarray
    series: dict[str, np.ndarray] = field(default_factory=dict)
    histograms: dict[str, dict] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Plain-list form for JSON export."""
        return {
            "times_ms": self.times_ms.tolist(),
            "series": {k: v.tolist() for k, v in sorted(self.series.items())},
            "histograms": {
                k: {
                    "edges": v["edges"].tolist(),
                    "counts": v["counts"].tolist(),
                }
                for k, v in sorted(self.histograms.items())
            },
        }


#: Power-of-two bucket edges for probe-count distributions (last bucket
#: catches anything past 16384 probes).
PROBE_COUNT_EDGES = tuple(float(2**k) for k in range(15))


def populate_span_histograms(registry: MetricsRegistry, spans) -> None:
    """Fill the distribution instruments from a *finished* span stream.

    Built post-hoc — after the sharded merge, which deduplicates the
    replicated maintenance spans — so summing shard histograms can never
    double count a flush.  ``spans`` is any iterable of
    :class:`~repro.obs.trace.Span`-shaped objects.
    """
    rounds = registry.histogram("round_probes", PROBE_COUNT_EDGES)
    flushes = registry.histogram("flush_probes", PROBE_COUNT_EDGES)
    round_probes: list[float] = []
    flush_probes: list[float] = []
    for span in spans:
        if span.name == "probe_round":
            round_probes.append(span.attrs.get("probes", 0))
        elif span.name == "maintenance_flush":
            flush_probes.append(span.attrs.get("probes", 0))
    rounds.observe_many(round_probes)
    flushes.observe_many(flush_probes)


def sample_times(makespan_ms: float, interval_ms: float) -> np.ndarray:
    """The run's sampling grid: ``0, dt, 2·dt, …`` covering the makespan."""
    if interval_ms <= 0:
        raise ConfigurationError(
            f"sample interval must be positive, got {interval_ms}"
        )
    n = int(np.floor(makespan_ms / interval_ms)) + 1
    return np.arange(n, dtype=float) * float(interval_ms)
