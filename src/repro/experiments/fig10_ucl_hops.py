"""Figure 10: inter-peer router hop-length vs inter-peer latency (UCL).

Paper: binned percentiles over peer pairs closer than 10 ms; "the bin at
3.9 ms has a median hop-length of 4", i.e. tracking 2 upstream routers
already finds those peers; "to discover peers closer than 5 ms, peers need
to track 3 upstream routers each for a 50% success rate and about 6
routers each for a 75% success rate".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.binning import BinnedPercentiles, binned_percentiles
from repro.analysis.compare import Comparison, ShapeCheck
from repro.analysis.tables import format_table
from repro.harness.workloads import azureus_internet
from repro.experiments.config import CLOSE_PEER_THRESHOLD_MS, ExperimentScale
from repro.mechanisms.ucl import hop_length_vs_latency


@dataclass(frozen=True)
class Fig10Result:
    """Binned hop-length percentiles by latency."""

    bins: BinnedPercentiles
    n_pairs: int

    def render(self) -> str:
        rows = [
            [r["x"], r["count"], r["p5"], r["p25"], r["p50"], r["p75"], r["p95"]]
            for r in self.bins.rows()
        ]
        return (
            "Fig 10: inter-peer hop-length vs latency "
            f"({self.n_pairs} close pairs)\n"
            + format_table(
                ["latency_ms", "pairs", "p5", "p25", "median", "p75", "p95"], rows
            )
        )

    def routers_to_track(self, latency_ms: float, percentile: int = 50) -> float:
        """Routers each peer must track to find peers at ``latency_ms``.

        Half the hop-length at the bin covering the latency.
        """
        idx = int(np.argmin(np.abs(self.bins.centers - latency_ms)))
        return float(self.bins.percentiles[percentile][idx]) / 2.0

    def comparisons(self) -> list[Comparison]:
        return [
            Comparison(
                "Fig 10",
                "routers to track for 50% of peers < 5 ms",
                "~3",
                f"{self.routers_to_track(4.0, 50):.1f}",
                "",
            ),
            Comparison(
                "Fig 10",
                "routers to track for 75% of peers < 5 ms",
                "~6",
                f"{self.routers_to_track(4.0, 75):.1f}",
                "",
            ),
        ]

    def shape_checks(self) -> list[ShapeCheck]:
        medians = self.bins.medians
        return [
            ShapeCheck(
                "Fig 10",
                "hop-length grows with inter-peer latency",
                lambda: medians[-1] > medians[0],
            ),
            ShapeCheck(
                "Fig 10",
                "very close peers need only a couple of tracked routers",
                lambda: self.routers_to_track(
                    float(self.bins.centers[0]), 50
                )
                <= 3.0,
            ),
        ]


def run(scale: ExperimentScale | None = None) -> Fig10Result:
    """Regenerate Figure 10."""
    scale = scale or ExperimentScale()
    internet = azureus_internet(scale.seed, scale.paper_scale)
    # The paper's 22,796-peer set is everyone who answered either probe.
    peers = [
        h.host_id
        for h in internet.hosts
        if h.host_id in set(internet.peer_ids)
        and (h.responds_to_tcp_ping or h.responds_to_traceroute)
    ]
    latency, hops = hop_length_vs_latency(
        internet, peers, max_latency_ms=CLOSE_PEER_THRESHOLD_MS, seed=scale.seed
    )
    edges = np.array([0.05, 0.3, 0.8, 1.6, 3.0, 5.0, 7.0, 10.0])
    bins = binned_percentiles(latency, hops, edges, min_count=10)
    return Fig10Result(bins=bins, n_pairs=int(latency.size))
