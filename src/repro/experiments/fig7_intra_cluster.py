"""Figure 7: hub-to-peer latency distributions of the 5 largest clusters.

Paper: cluster sizes 235, 139, 113, 79, 73; "the latency distribution shown
here indicates that most peers in the displayed clusters are in different
end-networks" — i.e. hub latencies are milliseconds, far above the 100 µs
same-network scale, and similar within a cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.compare import Comparison, ShapeCheck
from repro.analysis.plotting import ascii_cdf
from repro.analysis.tables import format_table
from repro.harness.workloads import azureus_study
from repro.experiments.config import ExperimentScale
from repro.measurement.pipeline_types import ClusterOfPeers


@dataclass(frozen=True)
class Fig7Result:
    """The top clusters and their hub-latency samples."""

    clusters: list[ClusterOfPeers]

    def render(self) -> str:
        rows = []
        for rank, cluster in enumerate(self.clusters, start=1):
            lat = np.asarray(cluster.latencies())
            rows.append(
                [
                    rank,
                    cluster.size,
                    float(np.percentile(lat, 5)),
                    float(np.median(lat)),
                    float(np.percentile(lat, 95)),
                ]
            )
        table = format_table(
            ["cluster", "size", "hub-lat p5 (ms)", "median", "p95"], rows
        )
        plot = ascii_cdf(
            {
                f"#{rank}": np.asarray(c.latencies())
                for rank, c in enumerate(self.clusters, start=1)
            },
            title="Fig 7: intra-cluster hub-latency CDFs, 5 largest clusters",
            log_x=True,
        )
        return f"{table}\n{plot}"

    def comparisons(self) -> list[Comparison]:
        sizes = [c.size for c in self.clusters]
        return [
            Comparison(
                "Fig 7",
                "sizes of the five largest pruned clusters",
                "235, 139, 113, 79, 73",
                ", ".join(str(s) for s in sizes),
                "same decaying shape at ~7x smaller population",
            )
        ]

    def shape_checks(self) -> list[ShapeCheck]:
        latencies = [np.asarray(c.latencies()) for c in self.clusters]
        return [
            ShapeCheck(
                "Fig 7",
                "hub latencies are millisecond-scale (different end-networks)",
                lambda: all(float(np.median(lat)) > 0.5 for lat in latencies),
            ),
            ShapeCheck(
                "Fig 7",
                "within each cluster, hub latencies sit in the pruning band",
                lambda: all(
                    float(lat.max()) <= 1.5 * float(lat.min()) + 1e-6
                    for lat in latencies
                ),
            ),
            ShapeCheck(
                "Fig 7",
                "the top clusters hold tens of peers each",
                lambda: all(c.size >= 10 for c in self.clusters),
            ),
        ]


def run(scale: ExperimentScale | None = None, top: int = 5) -> Fig7Result:
    """Regenerate Figure 7."""
    scale = scale or ExperimentScale()
    study = azureus_study(scale.seed, scale.paper_scale)
    return Fig7Result(clusters=study.top_clusters(top))
