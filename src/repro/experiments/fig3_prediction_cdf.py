"""Figure 3: cumulative distribution of the prediction measure.

Paper: 18,019 DNS-server pairs; "about 65% of the tested pairs have
prediction measure between the range of 0.5 and 2".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.compare import Comparison, ShapeCheck
from repro.analysis.plotting import ascii_cdf
from repro.harness.workloads import dns_study
from repro.experiments.config import ExperimentScale


@dataclass(frozen=True)
class Fig3Result:
    """The prediction-measure sample and its headline statistics."""

    prediction_measures: np.ndarray
    n_pairs: int
    fraction_within_half_to_two: float
    median: float

    def cdf(self) -> EmpiricalCdf:
        return EmpiricalCdf.from_values(self.prediction_measures)

    def render(self) -> str:
        plot = ascii_cdf(
            {"prediction measure": self.prediction_measures},
            title="Fig 3: CDF of predicted/measured latency",
            log_x=True,
        )
        return (
            f"{plot}\n"
            f"pairs={self.n_pairs}  "
            f"fraction in [0.5, 2] = {self.fraction_within_half_to_two:.2f}  "
            f"median = {self.median:.2f}"
        )

    def comparisons(self) -> list[Comparison]:
        return [
            Comparison(
                "Fig 3",
                "fraction of pairs with prediction measure in [0.5, 2]",
                "~0.65 (of 18,019 pairs)",
                f"{self.fraction_within_half_to_two:.2f} (of {self.n_pairs} pairs)",
                "our synthetic measurement floor is cleaner than the 2008 Internet",
            )
        ]

    def shape_checks(self) -> list[ShapeCheck]:
        return [
            ShapeCheck(
                "Fig 3",
                "a majority of pairs predict within a factor of two",
                lambda: self.fraction_within_half_to_two > 0.5,
            ),
            ShapeCheck(
                "Fig 3",
                "a non-negligible tail (>5%) falls outside [0.5, 2]",
                lambda: self.fraction_within_half_to_two < 0.95,
            ),
            ShapeCheck(
                "Fig 3",
                "the median prediction measure is near 1",
                lambda: 0.5 <= self.median <= 2.0,
            ),
        ]


def run(scale: ExperimentScale | None = None) -> Fig3Result:
    """Regenerate Figure 3."""
    scale = scale or ExperimentScale()
    study = dns_study(scale.seed, scale.paper_scale)
    values = study.prediction_measures()
    return Fig3Result(
        prediction_measures=values,
        n_pairs=int(values.size),
        fraction_within_half_to_two=study.fraction_within(0.5, 2.0),
        median=float(np.median(values)),
    )
