"""Run every experiment and emit the EXPERIMENTS.md comparison report."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.analysis.compare import (
    Comparison,
    ShapeCheck,
    format_comparisons,
    format_shape_checks,
)
from repro.experiments import (
    ext_churn_resilience,
    ext_condition_extent,
    fig3_prediction_cdf,
    fig4_prediction_bins,
    fig5_intra_inter,
    fig6_cluster_sizes,
    fig7_intra_cluster,
    fig8_meridian_cluster_size,
    fig9_meridian_delta,
    fig10_ucl_hops,
    fig11_prefix_rates,
    table1_vantage,
)
from repro.experiments.config import ExperimentScale
from repro.util.errors import ConfigurationError

#: Every experiment driver, in paper order (plus the future-work extension).
ALL_EXPERIMENTS = (
    ("Table 1", table1_vantage),
    ("Fig 3", fig3_prediction_cdf),
    ("Fig 4", fig4_prediction_bins),
    ("Fig 5", fig5_intra_inter),
    ("Fig 6", fig6_cluster_sizes),
    ("Fig 7", fig7_intra_cluster),
    ("Fig 8", fig8_meridian_cluster_size),
    ("Fig 9", fig9_meridian_delta),
    ("Fig 10", fig10_ucl_hops),
    ("Fig 11", fig11_prefix_rates),
    ("Ext (extent)", ext_condition_extent),
    ("Ext (churn)", ext_churn_resilience),
)


@dataclass
class RunReport:
    """Everything ``run_all`` produces."""

    renders: dict[str, str] = field(default_factory=dict)
    comparisons: list[Comparison] = field(default_factory=list)
    shape_checks: list[ShapeCheck] = field(default_factory=list)
    durations: dict[str, float] = field(default_factory=dict)

    @property
    def all_shapes_hold(self) -> bool:
        return all(check.evaluate() for check in self.shape_checks)

    def render(self) -> str:
        sections = []
        for name, text in self.renders.items():
            sections.append(f"## {name}  ({self.durations[name]:.1f}s)\n\n{text}\n")
        sections.append("## Paper vs measured\n\n" + format_comparisons(self.comparisons))
        sections.append("\n## Shape checks\n\n" + format_shape_checks(self.shape_checks))
        return "\n".join(sections)


def run_all(
    scale: ExperimentScale | None = None,
    only: tuple[str, ...] | None = None,
) -> RunReport:
    """Run all (or a named subset of) experiments."""
    scale = scale or ExperimentScale()
    if only is not None:
        known = {name for name, _ in ALL_EXPERIMENTS}
        unknown = [name for name in only if name not in known]
        if unknown:
            raise ConfigurationError(
                f"unknown experiment(s) {unknown}; choose from {sorted(known)}"
            )
    report = RunReport()
    for name, module in ALL_EXPERIMENTS:
        if only is not None and name not in only:
            continue
        # Wall-clock timing of experiment *phases* for the progress report:
        # durations are operator telemetry, never part of a scored outcome.
        start = time.perf_counter()  # repro-lint: allow(no-wall-clock)
        result = module.run(scale)
        elapsed = time.perf_counter() - start  # repro-lint: allow(no-wall-clock)
        report.durations[name] = elapsed
        report.renders[name] = result.render()
        report.comparisons.extend(result.comparisons())
        report.shape_checks.extend(result.shape_checks())
    return report


def main(argv: list[str] | None = None) -> None:
    """CLI: python -m repro.experiments.runner (or ``repro-experiments``)."""
    import argparse
    from dataclasses import replace

    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Run the paper's experiments and print the comparison report.",
    )
    parser.add_argument(
        "--only",
        nargs="+",
        metavar="NAME",
        help="experiment names to run (e.g. 'Table 1' 'Fig 8'); default all",
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's exact experiment sizes (slow: minutes per figure)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool width for harness trial fan-out (default 1)",
    )
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    scale = ExperimentScale.paper() if args.paper_scale else ExperimentScale()
    scale = replace(scale, workers=args.workers)
    report = run_all(scale, only=tuple(args.only) if args.only else None)
    print(report.render())
    print(f"\nall shape checks hold: {report.all_shapes_hold}")


if __name__ == "__main__":  # pragma: no cover
    main()
