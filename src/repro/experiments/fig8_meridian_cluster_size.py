"""Figure 8: Meridian accuracy vs end-networks per cluster.

Paper setup: ~2.5k peers (2 per end-network), ~2.4k in the overlay, 100
held-out targets, 5,000 queries, beta = 0.5, 16 nodes/ring, delta = 0.2,
three simulation runs per point (median/min/max plotted).

Claims reproduced: P(correct closest peer) rises to a peak at 25
end-networks/cluster then collapses as the clustering condition emerges;
P(correct cluster) rises monotonically toward 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.compare import Comparison, ShapeCheck
from repro.analysis.plotting import ascii_series
from repro.analysis.tables import series_table
from repro.algorithms.meridian_search import MeridianSearch
from repro.experiments.config import (
    ExperimentScale,
    FIG8_CLUSTER_COUNTS,
    FIG8_END_NETWORKS,
)
from repro.harness import QueryEngine, SamplingSpec, Scenario
from repro.topology.clustered import ClusteredConfig


@dataclass(frozen=True)
class Fig8Point:
    """One x value of Figure 8 (median/min/max across runs)."""

    end_networks: int
    closest_median: float
    closest_min: float
    closest_max: float
    cluster_median: float
    cluster_min: float
    cluster_max: float


@dataclass(frozen=True)
class Fig8Result:
    """The full Figure 8 sweep."""

    points: list[Fig8Point] = field(default_factory=list)

    def x(self) -> list[int]:
        return [p.end_networks for p in self.points]

    def closest_series(self) -> list[float]:
        return [p.closest_median for p in self.points]

    def cluster_series(self) -> list[float]:
        return [p.cluster_median for p in self.points]

    def render(self) -> str:
        table = series_table(
            "end-networks/cluster",
            self.x(),
            {
                "P(correct closest)": [f"{v:.3f}" for v in self.closest_series()],
                "P(correct cluster)": [f"{v:.3f}" for v in self.cluster_series()],
            },
        )
        plot = ascii_series(
            [float(x) for x in self.x()],
            {
                "closest": self.closest_series(),
                "cluster": self.cluster_series(),
            },
            title="Fig 8: Meridian success vs end-networks per cluster",
        )
        return f"{table}\n{plot}"

    def comparisons(self) -> list[Comparison]:
        closest = self.closest_series()
        peak_x = self.x()[int(np.argmax(closest))]
        return [
            Comparison(
                "Fig 8",
                "x of the P(correct closest) peak",
                "25 end-networks/cluster",
                str(peak_x),
                "",
            ),
            Comparison(
                "Fig 8",
                "P(correct closest) collapse from peak to 250 EN/cluster",
                "~0.5 -> ~0.1 (5x drop)",
                f"{max(closest):.2f} -> {closest[-1]:.2f} "
                f"({max(closest) / max(closest[-1], 1e-9):.0f}x drop)",
                "",
            ),
            Comparison(
                "Fig 8",
                "P(correct cluster) range",
                "~0.55 rising to ~1.0",
                f"{self.cluster_series()[0]:.2f} rising to "
                f"{self.cluster_series()[-1]:.2f}",
                "",
            ),
        ]

    def shape_checks(self) -> list[ShapeCheck]:
        closest = self.closest_series()
        cluster = self.cluster_series()
        return [
            ShapeCheck(
                "Fig 8",
                "closest-peer accuracy peaks at an intermediate cluster size",
                lambda: 0 < int(np.argmax(closest)) < len(closest) - 1,
            ),
            ShapeCheck(
                "Fig 8",
                "accuracy collapses (>=3x) from peak to the largest clusters",
                lambda: max(closest) >= 3.0 * closest[-1],
            ),
            ShapeCheck(
                "Fig 8",
                "P(correct cluster) rises monotonically toward 1",
                lambda: all(
                    cluster[i] <= cluster[i + 1] + 0.03
                    for i in range(len(cluster) - 1)
                )
                and cluster[-1] > 0.9,
            ),
        ]


def scenario_for(en: int, scale: ExperimentScale) -> Scenario:
    """The Figure 8 workload at one x value (``en`` end-networks/cluster)."""
    return Scenario(
        name=f"fig8-en{en}",
        topology=ClusteredConfig(
            n_clusters=FIG8_CLUSTER_COUNTS[en],
            end_networks_per_cluster=en,
            delta=0.2,
        ),
        sampling=SamplingSpec(n_targets=scale.meridian_targets),
        protocol="sampled",
        n_queries=scale.meridian_queries,
        trials=scale.meridian_seeds,
        seed=scale.seed + en,
        description="Meridian accuracy vs end-networks per cluster",
    )


def run(scale: ExperimentScale | None = None) -> Fig8Result:
    """Regenerate Figure 8 (the heavy Meridian sweep)."""
    scale = scale or ExperimentScale()
    engine = QueryEngine(workers=scale.workers)
    points = []
    for en in FIG8_END_NETWORKS:
        result = engine.run_scenario(scenario_for(en, scale), MeridianSearch)
        s_closest = result.aggregate("exact_rate")
        s_cluster = result.aggregate("cluster_rate")
        points.append(
            Fig8Point(
                end_networks=en,
                closest_median=s_closest.median,
                closest_min=s_closest.minimum,
                closest_max=s_closest.maximum,
                cluster_median=s_cluster.median,
                cluster_min=s_cluster.minimum,
                cluster_max=s_cluster.maximum,
            )
        )
    return Fig8Result(points=points)
