"""Figure 9: Meridian accuracy vs delta, the intra-cluster latency spread.

Paper setup: 125 end-networks/cluster, delta swept 0..1.  Claims: accuracy
in finding the closest peer improves significantly as delta grows (the
clustering condition weakens), while the median hub-latency of the peers
found in *unsuccessful* queries falls — Meridian preferentially returns
peers near the hub, concentrating load on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.compare import Comparison, ShapeCheck
from repro.analysis.plotting import ascii_series
from repro.analysis.tables import series_table
from repro.algorithms.meridian_search import MeridianSearch
from repro.experiments.config import (
    ExperimentScale,
    FIG9_CLUSTER_COUNT,
    FIG9_DELTAS,
    FIG9_END_NETWORKS,
)
from repro.harness import QueryEngine, SamplingSpec, Scenario
from repro.topology.clustered import ClusteredConfig


@dataclass(frozen=True)
class Fig9Point:
    """One delta value's outcomes."""

    delta: float
    closest_median: float
    found_hub_latency_median_ms: float


@dataclass(frozen=True)
class Fig9Result:
    """The full Figure 9 sweep."""

    points: list[Fig9Point] = field(default_factory=list)

    def deltas(self) -> list[float]:
        return [p.delta for p in self.points]

    def closest_series(self) -> list[float]:
        return [p.closest_median for p in self.points]

    def hub_latency_series(self) -> list[float]:
        return [p.found_hub_latency_median_ms for p in self.points]

    def render(self) -> str:
        table = series_table(
            "delta",
            self.deltas(),
            {
                "P(correct closest)": [f"{v:.3f}" for v in self.closest_series()],
                "found-peer hub latency (ms)": [
                    f"{v:.2f}" for v in self.hub_latency_series()
                ],
            },
        )
        plot = ascii_series(
            self.deltas(),
            {
                "closest": self.closest_series(),
                "hub-lat": [
                    v / max(self.hub_latency_series()) for v in self.hub_latency_series()
                ],
            },
            title="Fig 9: accuracy and found-peer hub latency vs delta "
            "(hub-lat normalised)",
        )
        return f"{table}\n{plot}"

    def comparisons(self) -> list[Comparison]:
        return [
            Comparison(
                "Fig 9",
                "P(correct closest) at delta=0 vs delta=1",
                "~0.05 -> ~0.42",
                f"{self.closest_series()[0]:.2f} -> {self.closest_series()[-1]:.2f}",
                "",
            ),
            Comparison(
                "Fig 9",
                "median hub latency of found (wrong) peer, delta=0 vs 1",
                "~5.2 ms -> ~1.7 ms",
                f"{self.hub_latency_series()[0]:.1f} ms -> "
                f"{self.hub_latency_series()[-1]:.1f} ms",
                "",
            ),
        ]

    def shape_checks(self) -> list[ShapeCheck]:
        closest = self.closest_series()
        hub = self.hub_latency_series()
        return [
            ShapeCheck(
                "Fig 9",
                "accuracy improves significantly (>=2x) from delta=0 to 1",
                lambda: closest[-1] >= 2.0 * max(closest[0], 1e-9),
            ),
            ShapeCheck(
                "Fig 9",
                "found-peer hub latency falls (>=2x) from delta=0 to 1",
                lambda: hub[0] >= 2.0 * hub[-1],
            ),
        ]


def scenario_for(delta: float, scale: ExperimentScale) -> Scenario:
    """The Figure 9 workload at one intra-cluster spread ``delta``."""
    return Scenario(
        name=f"fig9-delta{delta:.1f}",
        topology=ClusteredConfig(
            n_clusters=FIG9_CLUSTER_COUNT,
            end_networks_per_cluster=FIG9_END_NETWORKS,
            delta=delta,
        ),
        sampling=SamplingSpec(n_targets=scale.meridian_targets),
        protocol="sampled",
        n_queries=scale.meridian_queries,
        trials=scale.meridian_seeds,
        seed=scale.seed + int(delta * 100),
        description="Meridian accuracy vs intra-cluster latency spread",
    )


def run(scale: ExperimentScale | None = None) -> Fig9Result:
    """Regenerate Figure 9."""
    scale = scale or ExperimentScale()
    engine = QueryEngine(workers=scale.workers)
    points = []
    for delta in FIG9_DELTAS:
        result = engine.run_scenario(scenario_for(delta, scale), MeridianSearch)
        points.append(
            Fig9Point(
                delta=delta,
                closest_median=result.aggregate("exact_rate").median,
                found_hub_latency_median_ms=result.aggregate(
                    "median_wrong_hub_latency_ms"
                ).median,
            )
        )
    return Fig9Result(points=points)
