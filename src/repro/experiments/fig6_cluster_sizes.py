"""Figure 6: cumulative peer count by cluster size, pruned and unpruned.

Paper: 5,904 responsive, consistent-upstream peers; "about 16% of the peers
are in (pruned) clusters of size 25 or larger".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.compare import Comparison, ShapeCheck
from repro.analysis.tables import format_table
from repro.harness.workloads import azureus_study
from repro.experiments.config import ExperimentScale
from repro.measurement.azureus_pipeline import AzureusStudyResult


@dataclass(frozen=True)
class Fig6Result:
    """Cluster-size distributions from the Section 3.2 pipeline."""

    study: AzureusStudyResult

    def render(self) -> str:
        rows = []
        for size_threshold in (1, 2, 5, 10, 25, 50, 100, 200):
            unpruned = sum(
                s for s in self.study.cluster_sizes(pruned=False) if s <= size_threshold
            )
            pruned = sum(
                s for s in self.study.cluster_sizes(pruned=True) if s <= size_threshold
            )
            rows.append([size_threshold, unpruned, pruned])
        table = format_table(
            ["cluster size <=", "cumulative peers (unpruned)", "cumulative peers (pruned)"],
            rows,
        )
        return (
            "Fig 6: distribution of cluster sizes\n"
            f"{table}\n"
            f"peers retained = {self.study.peers_retained} "
            f"(of {self.study.peers_total}); "
            f"fraction in pruned clusters >= 25: "
            f"{self.study.fraction_in_large_clusters():.2f}"
        )

    def comparisons(self) -> list[Comparison]:
        return [
            Comparison(
                "Fig 6",
                "fraction of peers in pruned clusters of size >= 25",
                "~16% (5,904 peers retained of 156,658)",
                f"{self.study.fraction_in_large_clusters():.2f} "
                f"({self.study.peers_retained} retained of {self.study.peers_total})",
                "population scaled down ~7x",
            )
        ]

    def shape_checks(self) -> list[ShapeCheck]:
        study = self.study
        return [
            ShapeCheck(
                "Fig 6",
                "a non-negligible fraction (>5%) of peers sits in clusters >= 25",
                lambda: study.fraction_in_large_clusters() > 0.05,
            ),
            ShapeCheck(
                "Fig 6",
                "pruning shrinks but does not destroy the large clusters",
                lambda: max(study.cluster_sizes(pruned=True), default=0)
                >= 0.25 * max(study.cluster_sizes(pruned=False), default=1),
            ),
            ShapeCheck(
                "Fig 6",
                "most clusters are small (median size < 10)",
                lambda: sorted(study.cluster_sizes(pruned=True))[
                    len(study.cluster_sizes(pruned=True)) // 2
                ]
                < 10,
            ),
        ]


def run(scale: ExperimentScale | None = None) -> Fig6Result:
    """Regenerate Figure 6."""
    scale = scale or ExperimentScale()
    return Fig6Result(study=azureus_study(scale.seed, scale.paper_scale))
