"""Experiment scales and shared parameter sets."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ExperimentScale:
    """Global scale switch threaded through every experiment driver."""

    paper_scale: bool = False
    seed: int = 2008  # the venue year; any integer works

    # Meridian simulation sizing (Figs 8, 9).
    meridian_queries: int = 600
    meridian_seeds: int = 2
    meridian_targets: int = 100

    # Process-pool width for the harness trial fan-out (1 = sequential).
    workers: int = 1

    @classmethod
    def paper(cls) -> "ExperimentScale":
        """The paper's exact experiment sizes (slow: minutes per figure)."""
        return cls(
            paper_scale=True,
            meridian_queries=5000,
            meridian_seeds=3,
            meridian_targets=100,
        )


#: Fig 8's x axis: "end-networks in cluster".
FIG8_END_NETWORKS = (5, 25, 50, 125, 250)

#: Cluster counts giving ~2500 peers at 2 peers/end-network, as the paper.
FIG8_CLUSTER_COUNTS = {5: 250, 25: 50, 50: 25, 125: 10, 250: 5}

#: Fig 9's x axis: the intra-cluster latency variation delta.
FIG9_DELTAS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)

#: Fig 9 runs at 125 end-networks per cluster.
FIG9_END_NETWORKS = 125
FIG9_CLUSTER_COUNT = 10

#: Fig 11's x axis: matching prefix lengths in bits.
FIG11_PREFIX_LENGTHS = (8, 10, 12, 14, 16, 18, 20, 22, 24)

#: The paper's close/far latency threshold for Figs 10 and 11.
CLOSE_PEER_THRESHOLD_MS = 10.0
