"""Figure 5: intra-domain vs inter-domain latency distributions.

Paper: "intra-domain latencies are indeed much smaller (by about an order
of magnitude) than the inter-domain latencies"; also the inter-domain
predicted distribution "matches the measured latency distribution
reasonably well", and tightening the hop filter from 10 to 5 changes the
intra-domain curve only modestly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.compare import Comparison, ShapeCheck
from repro.analysis.plotting import ascii_cdf
from repro.harness.workloads import dns_study
from repro.experiments.config import ExperimentScale
from repro.util.errors import DataError


@dataclass(frozen=True)
class Fig5Result:
    """The four curves of Figure 5."""

    intra_domain_predicted_5: np.ndarray
    intra_domain_predicted_10: np.ndarray
    inter_domain_predicted_10: np.ndarray
    inter_domain_measured_10: np.ndarray

    def medians(self) -> dict[str, float]:
        return {
            "samedomain-5hops": float(np.median(self.intra_domain_predicted_5)),
            "samedomain-10hops": float(np.median(self.intra_domain_predicted_10)),
            "difdomains-predicted": float(np.median(self.inter_domain_predicted_10)),
            "difdomains-king": float(np.median(self.inter_domain_measured_10)),
        }

    def order_of_magnitude_gap(self) -> float:
        """inter / intra median ratio (the paper's headline gap)."""
        med = self.medians()
        return med["difdomains-king"] / max(med["samedomain-10hops"], 1e-9)

    def render(self) -> str:
        plot = ascii_cdf(
            {
                "intra(5h)": self.intra_domain_predicted_5,
                "intra(10h)": self.intra_domain_predicted_10,
                "inter-pred": self.inter_domain_predicted_10,
                "inter-king": self.inter_domain_measured_10,
            },
            title="Fig 5: intra- vs inter-domain latency CDFs (log x)",
            log_x=True,
        )
        med = self.medians()
        lines = [f"  median {name} = {value:.3g} ms" for name, value in med.items()]
        return plot + "\n" + "\n".join(lines)

    def comparisons(self) -> list[Comparison]:
        return [
            Comparison(
                "Fig 5",
                "inter-domain / intra-domain median latency ratio",
                "~10x (order of magnitude)",
                f"{self.order_of_magnitude_gap():.1f}x",
                "",
            )
        ]

    def shape_checks(self) -> list[ShapeCheck]:
        med = self.medians()
        return [
            ShapeCheck(
                "Fig 5",
                "intra-domain latencies are much smaller than inter-domain",
                lambda: self.order_of_magnitude_gap() >= 4.0,
            ),
            ShapeCheck(
                "Fig 5",
                "5-hop and 10-hop intra-domain curves are close",
                lambda: med["samedomain-5hops"]
                >= 0.5 * med["samedomain-10hops"],
            ),
            ShapeCheck(
                "Fig 5",
                "inter-domain predicted matches King-measured reasonably",
                lambda: 0.5
                <= med["difdomains-predicted"] / med["difdomains-king"]
                <= 2.0,
            ),
        ]


def run(scale: ExperimentScale | None = None) -> Fig5Result:
    """Regenerate Figure 5."""
    scale = scale or ExperimentScale()
    study = dns_study(scale.seed, scale.paper_scale)
    if not study.intra_domain_predicted_5:
        raise DataError("no intra-domain pairs survived the filters")
    return Fig5Result(
        intra_domain_predicted_5=np.asarray(study.intra_domain_predicted_5),
        intra_domain_predicted_10=np.asarray(study.intra_domain_predicted_10),
        inter_domain_predicted_10=np.asarray(study.inter_domain_predicted_10),
        inter_domain_measured_10=np.asarray(study.inter_domain_measured_10),
    )
