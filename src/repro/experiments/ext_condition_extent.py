"""Extension: the true extent of the clustering condition vs its estimate.

The paper's future work: "An interesting line of future work is to
determine the exact extent of occurrence of the clustering condition in
particular deployed P2P systems.  Doing so would however require explicit
cooperation from the individual peers."

In simulation we *have* that cooperation — the topology ground truth — so
this experiment quantifies two things the paper could not:

1. the **true** fraction of peers affected by the condition (peers whose
   PoP serves >= ``min_end_networks`` end-networks within the latency
   band, with another peer in their own end-network to be found);
2. how much of that the Section 3.2 measurement pipeline *recovers*, i.e.
   the estimate's recall/precision given unresponsive peers, traceroute
   gaps and noisy hub latencies.

The headline result: the pipeline *underestimates* the condition's extent
(every filter loses affected peers), so the paper's "non-negligible
fraction" was, if anything, conservative.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.compare import Comparison, ShapeCheck
from repro.analysis.tables import format_table
from repro.harness.workloads import azureus_internet, azureus_study
from repro.experiments.config import ExperimentScale
from repro.topology.internet import SyntheticInternet


@dataclass(frozen=True)
class ConditionExtentResult:
    """Ground truth vs pipeline estimate of the condition's extent."""

    peers_total: int
    true_affected_fraction: float
    estimated_affected_fraction: float  # from the Section 3.2 pipeline
    pipeline_recall: float  # affected peers the pipeline retained & clustered
    median_true_cluster_end_networks: float

    def render(self) -> str:
        rows = [
            ["peers in population", self.peers_total],
            ["truly affected fraction", f"{self.true_affected_fraction:.2%}"],
            [
                "pipeline-estimated affected fraction",
                f"{self.estimated_affected_fraction:.2%}",
            ],
            ["pipeline recall of affected peers", f"{self.pipeline_recall:.2%}"],
            [
                "median end-networks per true cluster",
                f"{self.median_true_cluster_end_networks:.0f}",
            ],
        ]
        return "Extension: extent of the clustering condition\n" + format_table(
            ["quantity", "value"], rows
        )

    def comparisons(self) -> list[Comparison]:
        return [
            Comparison(
                "Ext (extent)",
                "measured vs true fraction of peers under the condition",
                "unmeasurable in 2008 ('requires explicit cooperation')",
                f"true {self.true_affected_fraction:.0%}, pipeline sees "
                f"{self.estimated_affected_fraction:.0%}",
                "simulation-only result: the paper's estimate is conservative",
            )
        ]

    def shape_checks(self) -> list[ShapeCheck]:
        return [
            ShapeCheck(
                "Ext (extent)",
                "the condition affects a non-negligible share of peers (>5%)",
                lambda: self.true_affected_fraction > 0.05,
            ),
            ShapeCheck(
                "Ext (extent)",
                "the measurement pipeline underestimates the true extent",
                lambda: self.estimated_affected_fraction
                <= self.true_affected_fraction + 0.02,
            ),
        ]


def _true_affected_peers(
    internet: SyntheticInternet,
    band_factor: float = 1.5,
    min_end_networks: int = 10,
) -> tuple[set[int], list[int]]:
    """Ground truth: peers in condition-satisfying PoP clusters.

    A peer counts as affected when (a) its PoP serves at least
    ``min_end_networks`` peer-holding end-networks whose hub latencies fall
    within ``band_factor`` of each other, and (b) the peer's own
    end-network is in that band (its mate is hidden behind the hub).
    """
    by_pop: dict[int, dict[int, float]] = {}
    peers_by_en: dict[int, list[int]] = {}
    for peer in internet.peer_ids:
        record = internet.host(peer)
        en = internet.end_network(record.en_id)
        by_pop.setdefault(record.pop_id, {})[record.en_id] = en.hub_latency_ms
        peers_by_en.setdefault(record.en_id, []).append(peer)

    affected: set[int] = set()
    cluster_sizes: list[int] = []
    for pop_id, en_latencies in by_pop.items():
        if len(en_latencies) < min_end_networks:
            continue
        latencies = np.array(list(en_latencies.values()))
        en_ids = list(en_latencies.keys())
        # Largest band subset (same criterion as the pipeline's pruning).
        order = np.argsort(latencies)
        sorted_lat = latencies[order]
        best_lo, best_hi = 0, 1
        lo = 0
        for hi in range(1, latencies.size + 1):
            while sorted_lat[hi - 1] > band_factor * sorted_lat[lo]:
                lo += 1
            if hi - lo > best_hi - best_lo:
                best_lo, best_hi = lo, hi
        band_ens = [en_ids[int(i)] for i in order[best_lo:best_hi]]
        if len(band_ens) < min_end_networks:
            continue
        cluster_sizes.append(len(band_ens))
        for en_id in band_ens:
            affected.update(peers_by_en.get(en_id, []))
    return affected, cluster_sizes


def run(scale: ExperimentScale | None = None) -> ConditionExtentResult:
    """Compare the pipeline's estimate with ground truth."""
    scale = scale or ExperimentScale()
    internet = azureus_internet(scale.seed, scale.paper_scale)
    study = azureus_study(scale.seed, scale.paper_scale)

    truly_affected, cluster_sizes = _true_affected_peers(internet)
    total = len(internet.peer_ids)

    pipeline_affected: set[int] = set()
    threshold = 10  # same min-end-network scale as the ground truth
    for cluster in study.pruned_clusters:
        if cluster.size >= threshold:
            pipeline_affected.update(cluster.peer_ids)

    recall = (
        len(pipeline_affected & truly_affected) / len(truly_affected)
        if truly_affected
        else 0.0
    )
    return ConditionExtentResult(
        peers_total=total,
        true_affected_fraction=len(truly_affected) / total,
        estimated_affected_fraction=len(pipeline_affected) / total,
        pipeline_recall=recall,
        median_true_cluster_end_networks=(
            float(np.median(cluster_sizes)) if cluster_sizes else 0.0
        ),
    )
