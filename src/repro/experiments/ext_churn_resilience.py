"""Extension: nearest-peer search under membership churn.

The paper evaluates every scheme over a frozen member set, but real p2p
populations never hold still — churn is the defining operational condition
(Aspnes et al.; the Amad et al. survey).  With the membership lifecycle
API (``join``/``leave`` on every :class:`NearestPeerAlgorithm`) and the
harness's ``churn`` protocol, this experiment asks the question the paper
could not: *how much accuracy does each scheme keep, and what maintenance
bill does it pay, when the membership it indexed keeps changing?*

Every scheme faces the identical world, event stream and query stream
(common random numbers via :meth:`QueryEngine.compare`), is scored against
the membership alive at each query, and reports its per-query maintenance
probes next to its query probes — the same honesty for maintenance cost
that the paper demands for search cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms import BeaconSearch, MeridianSearch, RandomProbeSearch
from repro.analysis.compare import Comparison, ShapeCheck
from repro.analysis.tables import format_table
from repro.experiments.config import ExperimentScale
from repro.harness import ChurnSpec, QueryEngine, SamplingSpec, Scenario, TrialRecord
from repro.topology.clustered import ClusteredConfig

#: The schemes under churn: the zero-maintenance baseline, a cheap
#: incremental index, and the structural incremental overlay.
SCHEMES = (
    ("random-probe", lambda: RandomProbeSearch(budget=32)),
    ("beaconing", BeaconSearch),
    ("meridian", MeridianSearch),
)


@dataclass(frozen=True)
class ChurnResilienceResult:
    """Per-scheme accuracy and maintenance cost under steady churn."""

    n_hosts: int
    records: list  # TrialRecord per scheme, compare() order

    def render(self) -> str:
        rows = [
            [
                record.scheme,
                f"{record.exact_rate:.2f}",
                f"{record.cluster_rate:.2f}",
                f"{record.mean_probes_per_query:.1f}",
                f"{record.mean_maintenance_probes_per_query:.1f}",
                f"{record.mean_membership_size:.0f}",
            ]
            for record in self.records
        ]
        return (
            f"Extension: churn resilience ({self.n_hosts} hosts, "
            "steady-state churn)\n"
            + format_table(
                [
                    "scheme",
                    "P(exact)",
                    "P(cluster)",
                    "probes/q",
                    "maint/q",
                    "members~",
                ],
                rows,
            )
        )

    def comparisons(self) -> list[Comparison]:
        meridian = self._record("meridian")
        return [
            Comparison(
                "Ext (churn)",
                "Meridian accuracy under steady membership churn",
                "not measured (the paper's populations are frozen)",
                f"P(cluster) {meridian.cluster_rate:.0%} at "
                f"{meridian.mean_maintenance_probes_per_query:.0f} "
                "maintenance probes/query",
                "simulation-only: churn leaves cluster discovery intact but "
                "maintenance dominates the probe bill",
            )
        ]

    def _record(self, scheme: str) -> TrialRecord:
        for record in self.records:
            if record.scheme == scheme:
                return record
        raise KeyError(scheme)

    def shape_checks(self) -> list[ShapeCheck]:
        return [
            ShapeCheck(
                "Ext (churn)",
                "the index-free baseline pays zero maintenance",
                lambda: self._record("random-probe").total_maintenance_probes
                == 0,
            ),
            ShapeCheck(
                "Ext (churn)",
                "index-carrying schemes bill maintenance per event",
                lambda: all(
                    self._record(s).total_maintenance_probes > 0
                    for s in ("beaconing", "meridian")
                ),
            ),
            ShapeCheck(
                "Ext (churn)",
                "Meridian still finds the right cluster under churn (>50%)",
                lambda: self._record("meridian").cluster_rate > 0.5,
            ),
        ]


def churn_scenario(scale: ExperimentScale) -> Scenario:
    """Steady-state churn sized to the experiment scale."""
    if scale.paper_scale:
        topology = ClusteredConfig(
            n_clusters=10, end_networks_per_cluster=100, delta=0.2
        )
        n_queries, n_targets, min_members = 300, 100, 200
    else:
        topology = ClusteredConfig(
            n_clusters=6, end_networks_per_cluster=20, delta=0.2
        )
        n_queries, n_targets, min_members = 120, 40, 32
    return Scenario(
        name="ext-churn-resilience",
        topology=topology,
        sampling=SamplingSpec(n_targets=n_targets),
        protocol="churn",
        churn=ChurnSpec(
            initial_fraction=0.7,
            arrival_rate=0.6,
            departure_rate=0.6,
            session_length=80.0,
            warmup_steps=20,
            min_members=min_members,
        ),
        n_queries=n_queries,
        seed=scale.seed,
    )


def run(scale: ExperimentScale | None = None) -> ChurnResilienceResult:
    """Run every scheme on one world under one churn event stream."""
    scale = scale or ExperimentScale()
    scenario = churn_scenario(scale)
    records = QueryEngine().compare(
        scenario, [factory for _, factory in SCHEMES]
    )
    return ChurnResilienceResult(
        n_hosts=scenario.topology.n_peers,
        records=records,
    )
