"""Figure 4: prediction measure vs predicted latency (binned percentiles).

Paper: "There is a definite trend ... the prediction measure increases with
the predicted latency" — server lag inflates measurements of short paths
(ratio < 1), alternate paths deflate measurements of long ones (ratio > 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.binning import BinnedPercentiles
from repro.analysis.compare import Comparison, ShapeCheck
from repro.analysis.tables import format_table
from repro.harness.workloads import dns_study
from repro.experiments.config import ExperimentScale


@dataclass(frozen=True)
class Fig4Result:
    """Binned prediction-measure percentiles by predicted latency."""

    bins: BinnedPercentiles

    def render(self) -> str:
        rows = [
            [r["x"], r["count"], r["p5"], r["p25"], r["p50"], r["p75"], r["p95"]]
            for r in self.bins.rows()
        ]
        return "Fig 4: prediction measure vs predicted latency\n" + format_table(
            ["predicted_ms", "pairs", "p5", "p25", "median", "p75", "p95"], rows
        )

    def median_trend_slope(self) -> float:
        """Fitted slope of median prediction-measure vs log(predicted)."""
        x = np.log(self.bins.centers)
        y = self.bins.medians
        if x.size < 2:
            return 0.0
        return float(np.polyfit(x, y, 1)[0])

    def comparisons(self) -> list[Comparison]:
        first, last = self.bins.medians[0], self.bins.medians[-1]
        return [
            Comparison(
                "Fig 4",
                "median prediction measure, smallest vs largest latency bin",
                "rises from <1 toward 2-10 across 1-100 ms",
                f"{first:.2f} -> {last:.2f}",
                "same rising trend, same two error mechanisms",
            )
        ]

    def shape_checks(self) -> list[ShapeCheck]:
        return [
            ShapeCheck(
                "Fig 4",
                "prediction measure increases with predicted latency",
                lambda: self.median_trend_slope() > 0,
            ),
            ShapeCheck(
                "Fig 4",
                "short-latency bins are measurement-inflated (median < 1)",
                lambda: self.bins.medians[0] < 1.0,
            ),
        ]


def run(scale: ExperimentScale | None = None) -> Fig4Result:
    """Regenerate Figure 4."""
    scale = scale or ExperimentScale()
    study = dns_study(scale.seed, scale.paper_scale)
    return Fig4Result(bins=study.fig4_bins())
