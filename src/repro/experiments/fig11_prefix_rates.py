"""Figure 11: IP-prefix heuristic false-positive/false-negative rates.

Paper: rates computed per peer against a 10 ms threshold over ~2,400 peers
with at least one close peer; "the false-positive rate falls with ...
longer prefixes, whereas the false-negative rate increases ...
Unfortunately, there is no clear sweet-spot".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.compare import Comparison, ShapeCheck
from repro.analysis.plotting import ascii_series
from repro.analysis.tables import series_table
from repro.harness.workloads import azureus_internet
from repro.experiments.config import (
    CLOSE_PEER_THRESHOLD_MS,
    ExperimentScale,
    FIG11_PREFIX_LENGTHS,
)
from repro.mechanisms.ipprefix import (
    PrefixErrorRates,
    close_pairs_from_internet,
    prefix_error_rates,
)


@dataclass(frozen=True)
class Fig11Result:
    """Error rates per prefix length."""

    rates: list[PrefixErrorRates]

    def lengths(self) -> list[int]:
        return [r.prefix_length for r in self.rates]

    def false_positives(self) -> list[float]:
        return [r.median_false_positive_rate for r in self.rates]

    def false_negatives(self) -> list[float]:
        return [r.median_false_negative_rate for r in self.rates]

    def render(self) -> str:
        table = series_table(
            "prefix bits",
            self.lengths(),
            {
                "false-positive": [f"{v:.3f}" for v in self.false_positives()],
                "false-negative": [f"{v:.3f}" for v in self.false_negatives()],
            },
        )
        plot = ascii_series(
            [float(x) for x in self.lengths()],
            {"FP": self.false_positives(), "FN": self.false_negatives()},
            title="Fig 11: prefix-heuristic error rates vs prefix length",
        )
        return f"{table}\n{plot}"

    def has_sweet_spot(self, tolerance: float = 0.1) -> bool:
        """True if some length gets both rates under ``tolerance``.

        The paper's conclusion is that there is none.
        """
        return any(
            fp <= tolerance and fn <= tolerance
            for fp, fn in zip(self.false_positives(), self.false_negatives())
        )

    def comparisons(self) -> list[Comparison]:
        return [
            Comparison(
                "Fig 11",
                "false-positive rate at 8 bits vs 24 bits",
                "~1.0 -> ~0.0",
                f"{self.false_positives()[0]:.2f} -> {self.false_positives()[-1]:.2f}",
                "",
            ),
            Comparison(
                "Fig 11",
                "false-negative rate at 8 bits vs 24 bits",
                "~0.0 -> ~0.9",
                f"{self.false_negatives()[0]:.2f} -> {self.false_negatives()[-1]:.2f}",
                "",
            ),
            Comparison(
                "Fig 11",
                "sweet spot with both rates <= 0.1",
                "none",
                "none" if not self.has_sweet_spot() else "FOUND (mismatch!)",
                "",
            ),
        ]

    def shape_checks(self) -> list[ShapeCheck]:
        fp = self.false_positives()
        fn = self.false_negatives()
        return [
            ShapeCheck(
                "Fig 11",
                "false positives fall monotonically with prefix length",
                lambda: all(fp[i] >= fp[i + 1] - 0.02 for i in range(len(fp) - 1)),
            ),
            ShapeCheck(
                "Fig 11",
                "false negatives rise with prefix length",
                lambda: fn[-1] > fn[0] + 0.2,
            ),
            ShapeCheck(
                "Fig 11",
                "no sweet spot (both rates <= 0.1 simultaneously)",
                lambda: not self.has_sweet_spot(),
            ),
        ]


def run(scale: ExperimentScale | None = None) -> Fig11Result:
    """Regenerate Figure 11."""
    scale = scale or ExperimentScale()
    internet = azureus_internet(scale.seed, scale.paper_scale)
    peer_set = set(internet.peer_ids)
    peers = [
        h.host_id
        for h in internet.hosts
        if h.host_id in peer_set
        and (h.responds_to_tcp_ping or h.responds_to_traceroute)
    ]
    ips = np.array([internet.host(p).ip for p in peers], dtype=np.uint64)
    close = close_pairs_from_internet(
        internet, peers, threshold_ms=CLOSE_PEER_THRESHOLD_MS, seed=scale.seed
    )
    rates = prefix_error_rates(ips, close, list(FIG11_PREFIX_LENGTHS))
    return Fig11Result(rates=rates)
