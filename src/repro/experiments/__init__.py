"""Experiment drivers: one per table/figure of the paper.

Each driver module exposes ``run(config) -> <Fig>Result``; results render
as text tables/ASCII plots and carry machine-checkable
:class:`~repro.analysis.compare.ShapeCheck` s asserting the paper's
qualitative claims.  ``repro.experiments.runner.run_all`` regenerates the
whole evaluation and the EXPERIMENTS.md comparison tables.

Scale: default configs run the full pipeline at laptop-friendly sizes;
``paper_scale=True`` restores the paper's populations and query counts.
"""

from repro.experiments.config import ExperimentScale
from repro.experiments.runner import run_all

__all__ = ["ExperimentScale", "run_all"]
