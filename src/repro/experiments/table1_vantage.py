"""Table 1: the measurement vantage points.

Static in the paper; our reproduction additionally *verifies* the property
the table exists to establish — that the vantage points span the globe
(three continents), which is what justifies trusting the common-upstream-
router identification of Section 3.2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.compare import Comparison, ShapeCheck
from repro.analysis.tables import format_table
from repro.harness.workloads import azureus_internet
from repro.experiments.config import ExperimentScale
from repro.measurement.vantage import TABLE1_VANTAGE_POINTS, table1_rows
from repro.topology.cities import city_by_name


@dataclass(frozen=True)
class Table1Result:
    """The rendered table plus the geographic-spread verification."""

    continents: set[str]
    max_pairwise_distance_ms: float
    vantage_hosts_placed: int

    def render(self) -> str:
        table = format_table(["Vantage Point", "Location"], table1_rows())
        return (
            "Table 1: vantage points\n"
            f"{table}\n"
            f"continents covered: {sorted(self.continents)}; "
            f"max pairwise one-way distance: "
            f"{self.max_pairwise_distance_ms:.0f} ms; "
            f"vantage hosts placed in the synthetic Internet: "
            f"{self.vantage_hosts_placed}"
        )

    def comparisons(self) -> list[Comparison]:
        return [
            Comparison(
                "Table 1",
                "vantage points placed / continents covered",
                "7 hosts on 3 continents",
                f"{self.vantage_hosts_placed} hosts on "
                f"{len(self.continents)} continents",
                "",
            )
        ]

    def shape_checks(self) -> list[ShapeCheck]:
        return [
            ShapeCheck(
                "Table 1",
                "vantage points span at least three continents",
                lambda: len(self.continents) >= 3,
            ),
            ShapeCheck(
                "Table 1",
                "all seven Table 1 hosts exist in the synthetic Internet",
                lambda: self.vantage_hosts_placed == len(TABLE1_VANTAGE_POINTS),
            ),
        ]


def run(scale: ExperimentScale | None = None) -> Table1Result:
    """Regenerate (and verify) Table 1."""
    scale = scale or ExperimentScale()
    internet = azureus_internet(scale.seed, scale.paper_scale)
    cities = [city_by_name(vp.city) for vp in TABLE1_VANTAGE_POINTS]
    continents = {c.continent for c in cities}
    max_distance = max(
        a.distance_ms(b) for a in cities for b in cities if a is not b
    )
    return Table1Result(
        continents=continents,
        max_pairwise_distance_ms=max_distance,
        vantage_hosts_placed=len(internet.vantage_ids),
    )
