"""Opportunity cost of missing the same-network peer.

The introduction's motivation: "Peers that share the same extended LAN have
latencies an order of magnitude smaller, and bandwidths an order of
magnitude larger, than those in different networks.  The ability to
discover peers in the same extended LAN therefore translates to a similar
order of magnitude improvement in performance."

:func:`opportunity_cost` turns a batch of search outcomes into those
multipliers, so example applications (gaming, swarming) can report what the
clustering condition costs them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.util.errors import DataError


@dataclass(frozen=True)
class OpportunityCost:
    """Aggregate cost of the found-vs-true-nearest gap."""

    n_queries: int
    exact_rate: float
    median_latency_ratio: float  # found / true-nearest latency
    p90_latency_ratio: float
    median_excess_latency_ms: float
    estimated_bandwidth_factor: float  # throughput multiplier lost (median)


def opportunity_cost(
    found_latencies_ms: Sequence[float],
    true_nearest_latencies_ms: Sequence[float],
    rtt_bandwidth_exponent: float = 1.0,
) -> OpportunityCost:
    """Compare search outcomes against ground truth.

    ``rtt_bandwidth_exponent`` models TCP throughput ~ 1/RTT^e (e = 1 for
    the canonical bandwidth-delay relation), turning latency ratios into a
    bandwidth-loss factor.
    """
    found = np.asarray(found_latencies_ms, dtype=float)
    true = np.asarray(true_nearest_latencies_ms, dtype=float)
    if found.shape != true.shape or found.size == 0:
        raise DataError("found/true latency arrays must be equal non-empty shapes")
    if np.any(true <= 0):
        raise DataError("true nearest latencies must be positive")
    ratio = found / true
    exact = float(np.mean(ratio <= 1.0 + 1e-9))
    return OpportunityCost(
        n_queries=int(found.size),
        exact_rate=exact,
        median_latency_ratio=float(np.median(ratio)),
        p90_latency_ratio=float(np.percentile(ratio, 90)),
        median_excess_latency_ms=float(np.median(found - true)),
        estimated_bandwidth_factor=float(
            np.median(ratio**rtt_bandwidth_exponent)
        ),
    )
