"""The paper's primary contribution, packaged for reuse.

* :mod:`repro.core.clustering` — detect the **clustering condition** in a
  latency dataset: clusters of many end-networks, mutually reachable only
  through a hub, all at "about the same" hub latency (Section 2.1's three
  requirements).
* :mod:`repro.core.assumptions` — quantify the geometric assumptions
  latency-only algorithms rely on (growth constraint, doubling constant,
  intrinsic dimensionality) and how the condition violates them
  (Section 2.2).
* :mod:`repro.core.lowerbound` — the analytic cost model: once a query
  enters a cluster, discovery degenerates to brute force, so expected
  probes scale with the number of end-networks (Section 2's bound).
* :mod:`repro.core.opportunity` — the opportunity cost of missing the
  same-network peer (the order-of-magnitude latency/bandwidth gap of the
  introduction).
* :mod:`repro.core.finder` — :class:`NearestPeerFinder`, the
  batteries-included API: mechanism cascade (multicast → registry → UCL →
  prefix) with a latency-only fallback, i.e. the system the paper's
  Section 5 recommends deploying.
"""

from repro.core.assumptions import (
    AssumptionReport,
    doubling_constant,
    growth_ratios,
    intrinsic_dimension,
)
from repro.core.clustering import ClusterReport, ClusteringConditionConfig, detect_clusters
from repro.core.finder import NearestPeerFinder
from repro.core.lowerbound import (
    expected_probes_with_replacement,
    expected_probes_without_replacement,
    phase_transition_probes,
)
from repro.core.opportunity import OpportunityCost, opportunity_cost

__all__ = [
    "detect_clusters",
    "ClusterReport",
    "ClusteringConditionConfig",
    "growth_ratios",
    "doubling_constant",
    "intrinsic_dimension",
    "AssumptionReport",
    "expected_probes_with_replacement",
    "expected_probes_without_replacement",
    "phase_transition_probes",
    "NearestPeerFinder",
    "OpportunityCost",
    "opportunity_cost",
]
