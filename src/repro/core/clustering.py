"""Detecting the clustering condition in a latency dataset.

Section 2.1 defines the condition by three requirements: (1) many peers in
different end-networks, (2) inter-end-network traffic crosses a common hub,
and (3) all end-networks sit at about the same latency from the hub.  Given
only a latency matrix (no topology ground truth), the detector recovers the
structure the condition implies:

* **end-networks** — maximal groups of mutually near peers (latency under
  ``en_threshold_ms``; the paper's same-network latencies are two orders of
  magnitude below inter-network ones, so any threshold in the gap works);
* **clusters** — connected components of end-networks linked when their
  representative latency is below ``cluster_threshold_ms`` (inside a
  cluster, pairwise latency ≈ hub+hub ≈ 10 ms; across clusters it includes
  the wide-area core, ≈ 65 ms median);
* the **condition check** — a cluster satisfies the condition when it has
  at least ``min_end_networks`` end-networks and its inter-EN latencies are
  within a ``band_factor`` of one another (requirement 3's "about the same
  latency", the paper prunes at 1.5x).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import DataError
from repro.util.validate import require_positive


@dataclass(frozen=True)
class ClusteringConditionConfig:
    """Detector thresholds (see module docstring)."""

    en_threshold_ms: float = 1.0
    cluster_threshold_ms: float = 25.0
    band_factor: float = 1.5
    min_end_networks: int = 10

    def __post_init__(self) -> None:
        require_positive(self.en_threshold_ms, "en_threshold_ms")
        require_positive(self.cluster_threshold_ms, "cluster_threshold_ms")
        if self.band_factor <= 1.0:
            raise DataError("band_factor must exceed 1")


@dataclass
class ClusterReport:
    """One detected cluster and its condition diagnosis."""

    peer_ids: list[int]
    end_networks: list[list[int]]
    median_intra_cluster_ms: float
    latency_band_ratio: float  # max/min inter-EN latency within the cluster
    satisfies_condition: bool
    expected_search_probes: float  # the Section 2 lower bound for this cluster

    @property
    def n_end_networks(self) -> int:
        return len(self.end_networks)

    @property
    def n_peers(self) -> int:
        return len(self.peer_ids)


def _connected_components(adjacency: list[set[int]]) -> list[list[int]]:
    """Components of an adjacency-set graph (iterative DFS)."""
    n = len(adjacency)
    seen = [False] * n
    components: list[list[int]] = []
    for start in range(n):
        if seen[start]:
            continue
        stack = [start]
        seen[start] = True
        component = []
        while stack:
            node = stack.pop()
            component.append(node)
            for neighbour in adjacency[node]:
                if not seen[neighbour]:
                    seen[neighbour] = True
                    stack.append(neighbour)
        components.append(sorted(component))
    return components


def _group_end_networks(
    matrix: np.ndarray, config: ClusteringConditionConfig
) -> list[list[int]]:
    n = matrix.shape[0]
    near = matrix <= config.en_threshold_ms
    adjacency = [
        {int(j) for j in np.flatnonzero(near[i]) if j != i} for i in range(n)
    ]
    return _connected_components(adjacency)


def detect_clusters(
    matrix: np.ndarray,
    config: ClusteringConditionConfig | None = None,
) -> list[ClusterReport]:
    """Run the detector over a dense latency matrix.

    Returns one report per cluster (of any size); check
    ``report.satisfies_condition`` for the paper's condition.
    """
    config = config or ClusteringConditionConfig()
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise DataError(f"latency matrix must be square, got {arr.shape}")

    end_networks = _group_end_networks(arr, config)
    n_en = len(end_networks)
    representatives = [en[0] for en in end_networks]

    # EN-level representative latency matrix.
    rep = np.array(representatives)
    en_matrix = arr[np.ix_(rep, rep)]

    linked = en_matrix <= config.cluster_threshold_ms
    adjacency = [
        {int(j) for j in np.flatnonzero(linked[i]) if j != i} for i in range(n_en)
    ]
    components = _connected_components(adjacency)

    reports: list[ClusterReport] = []
    for component in components:
        member_ens = [end_networks[i] for i in component]
        peer_ids = sorted(p for en in member_ens for p in en)
        if len(component) >= 2:
            sub = en_matrix[np.ix_(component, component)]
            cross = sub[np.triu_indices(len(component), k=1)]
            median = float(np.median(cross))
            band = float(cross.max() / max(cross.min(), 1e-9))
        else:
            median = 0.0
            band = 1.0
        satisfied = (
            len(component) >= config.min_end_networks
            and band <= config.band_factor
        )
        reports.append(
            ClusterReport(
                peer_ids=peer_ids,
                end_networks=member_ens,
                median_intra_cluster_ms=median,
                latency_band_ratio=band,
                satisfies_condition=satisfied,
                expected_search_probes=(len(component) + 1) / 2.0,
            )
        )
    return reports


def condition_summary(reports: list[ClusterReport]) -> dict[str, float]:
    """Population-level summary: how much of the peer set is affected."""
    total_peers = sum(r.n_peers for r in reports)
    affected = sum(r.n_peers for r in reports if r.satisfies_condition)
    return {
        "clusters": float(len(reports)),
        "clusters_satisfying": float(
            sum(1 for r in reports if r.satisfies_condition)
        ),
        "peers": float(total_peers),
        "peers_affected_fraction": affected / total_peers if total_peers else 0.0,
    }
