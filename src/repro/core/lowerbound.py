"""The Section 2 cost model: brute force inside the cluster.

"The query, if it does eventually reach A1, will have traversed through, on
average, a number of peers equal to the number of end-networks in the
cluster ... This translates to a lower bound on the number of latency
probes performed as well."

We provide both sampling disciplines (a search that remembers probed
end-networks samples without replacement; one that does not, with) plus a
two-phase model of the whole query: cheap geometric descent outside the
cluster, then brute force inside.
"""

from __future__ import annotations

import math

from repro.util.errors import DataError


def expected_probes_without_replacement(n_end_networks: int) -> float:
    """Expected probes to hit the one correct end-network, no repeats.

    Uniform sampling without replacement over ``n`` end-networks finds the
    single correct one after ``(n + 1) / 2`` draws in expectation.
    """
    if n_end_networks < 1:
        raise DataError("need at least one end-network")
    return (n_end_networks + 1) / 2.0


def expected_probes_with_replacement(n_end_networks: int) -> float:
    """Expected probes when the search cannot avoid re-probing (memoryless).

    Geometric with success probability ``1/n``: mean ``n``.
    """
    if n_end_networks < 1:
        raise DataError("need at least one end-network")
    return float(n_end_networks)


def descent_probes(
    population: int, probes_per_hop: int = 16, reduction: float = 0.5
) -> float:
    """Probes spent *outside* the cluster by a geometric-descent search.

    A Meridian-style query halves its distance each hop, so it takes
    ``O(log(population))`` hops of ``probes_per_hop`` each before entering
    the cluster.
    """
    if population < 2:
        return 0.0
    hops = math.log(population) / math.log(1.0 / reduction)
    return probes_per_hop * max(1.0, hops)


def phase_transition_probes(
    n_end_networks: int,
    population: int,
    probes_per_hop: int = 16,
    with_replacement: bool = False,
) -> float:
    """Total expected probes: descent phase + in-cluster brute force.

    The paper's "phase transition": the first term grows with ``log`` of
    the population, the second *linearly* with the cluster's end-network
    count — so for large clusters the brute-force term dominates and the
    search cost decouples from how clever the algorithm is.
    """
    inside = (
        expected_probes_with_replacement(n_end_networks)
        if with_replacement
        else expected_probes_without_replacement(n_end_networks)
    )
    return descent_probes(population, probes_per_hop) + inside


def success_probability_with_budget(
    n_end_networks: int, probe_budget: int, with_replacement: bool = False
) -> float:
    """P(find the correct end-network) under a fixed in-cluster probe budget.

    Without replacement this is ``min(1, budget / n)``; with replacement
    ``1 - (1 - 1/n)^budget``.  This is the quantity that collapses in
    Fig 8's right half: a ~16-probe budget against 125-250 end-networks.
    """
    if probe_budget < 0:
        raise DataError("probe budget must be non-negative")
    n = n_end_networks
    if n < 1:
        raise DataError("need at least one end-network")
    if with_replacement:
        return 1.0 - (1.0 - 1.0 / n) ** probe_budget
    return min(1.0, probe_budget / n)
