"""Quantifying the geometric assumptions of Section 2.2.

Three measurable quantities, each paired with the paper's argument for why
the clustering condition breaks it:

* **growth ratios** ``|B(p, 2l)| / |B(p, l)|`` — growth-constrained metrics
  (Karger-Ruhl, Tapestry) need this bounded; around a clustered peer it
  explodes at the hub scale ("a small number of peers at very small
  latencies ... immediately followed by a well-populated region").
* **doubling constant** — the number of radius-``r/2`` balls needed to
  cover a radius-``r`` ball (Meridian's assumption); at the cluster scale
  each half-ball covers one end-network, so the constant reaches the
  number of end-networks.
* **intrinsic (correlation) dimension** — the slope of ``log N(r)`` vs
  ``log r``; embedding-based schemes (PIC, Vivaldi, GNP) need it small,
  but the cluster's latency structure needs "a number of dimensions on
  the order of the number of end-networks".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import DataError
from repro.util.rng import make_rng


@dataclass(frozen=True)
class AssumptionReport:
    """Summary of all three diagnostics over one latency space."""

    max_growth_ratio: float
    median_growth_ratio: float
    doubling_constant: float
    intrinsic_dimension: float


def growth_ratios(
    matrix: np.ndarray,
    radii_ms: list[float],
    sample_size: int = 200,
    seed: int | np.random.Generator | None = None,
) -> dict[float, np.ndarray]:
    """``|B(2l)| / |B(l)|`` per sampled peer, for each radius ``l``.

    Peers with an empty ``B(l)`` (beyond themselves) are skipped for that
    radius.
    """
    arr = np.asarray(matrix, dtype=float)
    n = arr.shape[0]
    rng = make_rng(seed)
    picks = rng.choice(n, size=min(sample_size, n), replace=False)
    out: dict[float, np.ndarray] = {}
    for radius in radii_ms:
        ratios = []
        for p in picks:
            row = arr[p]
            inner = int(np.count_nonzero(row <= radius)) - 1  # exclude self
            if inner <= 0:
                continue
            outer = int(np.count_nonzero(row <= 2 * radius)) - 1
            ratios.append(outer / inner)
        out[radius] = np.asarray(ratios)
    return out


def doubling_constant(
    matrix: np.ndarray,
    radius_ms: float,
    sample_size: int = 50,
    seed: int | np.random.Generator | None = None,
) -> float:
    """Empirical doubling constant at one scale (greedy half-ball cover).

    For sampled centers ``p``: cover ``B(p, r)`` greedily with balls of
    radius ``r/2`` centered at members; report the maximum cover size.
    Greedy covering overshoots the optimum by at most a log factor, which
    is fine for the violation-vs-satisfaction contrast the tests assert.
    """
    arr = np.asarray(matrix, dtype=float)
    n = arr.shape[0]
    if n == 0:
        raise DataError("empty matrix")
    rng = make_rng(seed)
    picks = rng.choice(n, size=min(sample_size, n), replace=False)
    worst = 0
    for p in picks:
        ball = np.flatnonzero(arr[p] <= radius_ms)
        if ball.size <= 1:
            continue
        uncovered = set(int(x) for x in ball)
        covers = 0
        while uncovered:
            # Greedy: the member covering the most uncovered points.
            best_center, best_cover = None, None
            for candidate in list(uncovered)[:64]:  # bounded scan
                covered = {
                    q for q in uncovered if arr[candidate, q] <= radius_ms / 2.0
                }
                if best_cover is None or len(covered) > len(best_cover):
                    best_center, best_cover = candidate, covered
            uncovered -= best_cover if best_cover else {next(iter(uncovered))}
            covers += 1
        worst = max(worst, covers)
    return float(worst)


def intrinsic_dimension(
    matrix: np.ndarray,
    r_low_ms: float,
    r_high_ms: float,
    seed: int | np.random.Generator | None = None,
    sample_pairs: int = 20000,
) -> float:
    """Correlation-dimension estimate over the scale range [r_low, r_high].

    ``dim ≈ (log C(r_high) - log C(r_low)) / (log r_high - log r_low)``
    where ``C(r)`` is the fraction of sampled pairs within latency ``r``.
    """
    if not 0 < r_low_ms < r_high_ms:
        raise DataError("need 0 < r_low < r_high")
    arr = np.asarray(matrix, dtype=float)
    n = arr.shape[0]
    rng = make_rng(seed)
    a = rng.integers(0, n, size=sample_pairs)
    b = rng.integers(0, n, size=sample_pairs)
    keep = a != b
    sample = arr[a[keep], b[keep]]
    c_low = float(np.mean(sample <= r_low_ms))
    c_high = float(np.mean(sample <= r_high_ms))
    if c_low <= 0 or c_high <= 0:
        raise DataError("no pairs inside the requested radii — widen the range")
    return float(
        (np.log(c_high) - np.log(c_low)) / (np.log(r_high_ms) - np.log(r_low_ms))
    )


def assumption_report(
    matrix: np.ndarray,
    hub_scale_ms: float = 10.0,
    seed: int = 0,
) -> AssumptionReport:
    """All three diagnostics at the cluster (hub) scale."""
    ratios = growth_ratios(matrix, [hub_scale_ms / 2.0], seed=seed)[
        hub_scale_ms / 2.0
    ]
    if ratios.size == 0:
        raise DataError("no peers had neighbours at the half-hub scale")
    return AssumptionReport(
        max_growth_ratio=float(ratios.max()),
        median_growth_ratio=float(np.median(ratios)),
        doubling_constant=doubling_constant(matrix, hub_scale_ms, seed=seed),
        intrinsic_dimension=intrinsic_dimension(
            matrix, hub_scale_ms / 4.0, hub_scale_ms, seed=seed
        ),
    )
