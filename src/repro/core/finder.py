"""`NearestPeerFinder` — the batteries-included public API.

What a downstream application (game lobby, swarm tracker) actually wants:
peers join, peers ask "who is my nearest peer?", and the library runs the
full Section 5 recipe under the hood — multicast scoped to the end-network,
the per-network registry, the UCL key-value map, the IP-prefix map, and a
latency-only fallback (Meridian by default) for peers the mechanisms cannot
place.

Example::

    internet = SyntheticInternet.generate(seed=7)
    finder = NearestPeerFinder(internet, seed=7)
    for peer in internet.peer_ids[:200]:
        finder.join(peer)
    result = finder.find(internet.peer_ids[200])
    print(result.stage, result.found, result.latency_ms)
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.algorithms.base import NearestPeerAlgorithm
from repro.algorithms.meridian_search import MeridianSearch
from repro.mechanisms.composite import CompositeFinder, CompositeResult
from repro.mechanisms.ipprefix import PrefixMap
from repro.mechanisms.multicast import MulticastSearch
from repro.mechanisms.registry import EndNetworkRegistry
from repro.mechanisms.ucl import UclMap
from repro.topology.internet import SyntheticInternet
from repro.util.errors import ConfigurationError
from repro.util.rng import make_rng

#: All mechanism names, in cascade order.
ALL_MECHANISMS = ("multicast", "registry", "ucl", "prefix")


class NearestPeerFinder:
    """High-level nearest-peer service over a synthetic Internet."""

    def __init__(
        self,
        internet: SyntheticInternet,
        mechanisms: Iterable[str] = ALL_MECHANISMS,
        fallback: NearestPeerAlgorithm | None = None,
        prefix_length: int = 24,
        ucl_max_estimate_ms: float = 10.0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self._internet = internet
        self._rng = make_rng(seed)
        chosen = tuple(mechanisms)
        unknown = set(chosen) - set(ALL_MECHANISMS)
        if unknown:
            raise ConfigurationError(f"unknown mechanisms: {sorted(unknown)}")
        self._fallback = fallback if fallback is not None else MeridianSearch()
        self._composite = CompositeFinder(
            internet,
            multicast=(
                MulticastSearch(internet, seed=self._rng)
                if "multicast" in chosen
                else None
            ),
            registry=(
                EndNetworkRegistry(internet) if "registry" in chosen else None
            ),
            ucl_map=UclMap(internet) if "ucl" in chosen else None,
            prefix_map=(
                PrefixMap(internet, prefix_length=prefix_length)
                if "prefix" in chosen
                else None
            ),
            fallback=self._fallback,
            ucl_max_estimate_ms=ucl_max_estimate_ms,
            seed=self._rng,
        )
        self._members: list[int] = []
        self._fallback_stale = True

    # -- membership ------------------------------------------------------------

    @property
    def members(self) -> list[int]:
        """Peers currently joined."""
        return list(self._members)

    def join(self, peer_id: int) -> None:
        """A peer joins: publish it through every configured mechanism."""
        if peer_id in self._members:
            raise ConfigurationError(f"peer {peer_id} already joined")
        self._composite.register_peer(peer_id)
        self._members.append(peer_id)
        self._fallback_stale = True

    def join_all(self, peer_ids: Iterable[int]) -> None:
        """Bulk join."""
        for peer_id in peer_ids:
            self.join(peer_id)

    # -- queries -----------------------------------------------------------------

    def _refresh_fallback(self) -> None:
        if self._fallback_stale and len(self._members) >= 2:
            self._fallback.build(
                self._internet, np.asarray(self._members), seed=self._rng
            )
            self._fallback_stale = False

    def find(self, target: int) -> CompositeResult:
        """Nearest joined peer to ``target`` (which need not have joined)."""
        if len(self._members) < 1:
            raise ConfigurationError("no peers have joined yet")
        self._refresh_fallback()
        return self._composite.find_nearest(target)

    def true_nearest(self, target: int) -> tuple[int, float]:
        """Ground truth (for evaluation): the actual nearest joined peer."""
        best, best_latency = None, None
        for member in self._members:
            if member == target:
                continue
            latency = self._internet.route(target, member).latency_ms
            if best_latency is None or latency < best_latency:
                best, best_latency = member, latency
        if best is None:
            raise ConfigurationError("no other members to compare against")
        return best, best_latency
