"""Consistent hashing for the Chord ring.

The paper: "Many DHTs assume that keys are uniformly distributed, which may
not be the case with IP addresses.  In such scenarios, the IP addresses can
be hashed to compute the keys" — so both node identifiers and keys go
through SHA-1 onto an ``m``-bit ring.
"""

from __future__ import annotations

import hashlib

from repro.util.errors import DataError

#: Ring size in bits.  Chord's 160 bits is overkill for simulations; 64
#: keeps ids readable while collisions stay negligible at our scales.
RING_BITS = 64
RING_SIZE = 1 << RING_BITS


def _sha1_int(data: bytes) -> int:
    digest = hashlib.sha1(data).digest()
    return int.from_bytes(digest[:8], "big")


def hash_key(key: str | bytes | int) -> int:
    """Hash an application key (router IP, prefix value, ...) onto the ring."""
    if isinstance(key, int):
        data = key.to_bytes(16, "big", signed=False)
    elif isinstance(key, str):
        data = key.encode("utf-8")
    elif isinstance(key, bytes):
        data = key
    else:
        raise DataError(f"unhashable key type {type(key).__name__}")
    return _sha1_int(b"key:" + data)


def hash_node(node_id: int) -> int:
    """Hash a node identifier onto the ring (domain-separated from keys)."""
    return _sha1_int(b"node:" + int(node_id).to_bytes(16, "big", signed=False))


def ring_distance(a: int, b: int) -> int:
    """Clockwise distance from ``a`` to ``b`` on the ring."""
    return (b - a) % RING_SIZE


def in_interval(x: int, left: int, right: int, inclusive_right: bool = True) -> bool:
    """True if ``x`` lies in the clockwise interval (left, right] / (left, right)."""
    if left == right:
        # The whole ring (degenerate single-node case).
        return True if inclusive_right else x != left
    d_x = ring_distance(left, x)
    d_r = ring_distance(left, right)
    if inclusive_right:
        return 0 < d_x <= d_r
    return 0 < d_x < d_r
