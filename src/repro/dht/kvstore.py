"""A replicated multi-value key-value store over the Chord ring.

The UCL mechanism stores, under each upstream router's key, "the IP
addresses of the peers that have the router in their UCLs" — i.e. each key
accumulates a *set* of values.  Values are replicated on the owner's
successor list so the mapping survives node departures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dht.chord import ChordRing
from repro.dht.hashing import hash_key
from repro.util.errors import DataError
from repro.util.rng import make_rng


@dataclass
class LookupStats:
    """Aggregate DHT traffic counters."""

    lookups: int = 0
    total_hops: int = 0

    @property
    def mean_hops(self) -> float:
        return self.total_hops / self.lookups if self.lookups else 0.0


class DhtKeyValueStore:
    """Multi-value put/get with successor-list replication."""

    def __init__(self, ring: ChordRing, replicas: int = 2, seed: int | None = None) -> None:
        if ring.size == 0:
            raise DataError("cannot build a store on an empty ring")
        self._ring = ring
        self._replicas = max(1, replicas)
        self._rng = make_rng(seed)
        # node_id -> key -> set of values
        self._storage: dict[int, dict[int, set]] = {n: {} for n in ring.node_ids}
        self.stats = LookupStats()

    def _owner_chain(self, key_position: int, start_node: int) -> list[int]:
        owner, hops = self._ring.lookup(start_node, key_position)
        self.stats.lookups += 1
        self.stats.total_hops += hops
        chain = [owner]
        for successor in self._ring.node(owner).successors:
            if len(chain) >= self._replicas:
                break
            if successor not in chain:
                chain.append(successor)
        return chain

    def _random_start(self) -> int:
        return int(self._rng.choice(self._ring.node_ids))

    def put(self, key: str | bytes | int, value, start_node: int | None = None) -> None:
        """Append ``value`` to the set stored under ``key``."""
        position = hash_key(key)
        for node in self._owner_chain(position, start_node or self._random_start()):
            store = self._storage.setdefault(node, {})
            store.setdefault(position, set()).add(value)

    def get(self, key: str | bytes | int, start_node: int | None = None) -> set:
        """All values stored under ``key`` (empty set when absent)."""
        position = hash_key(key)
        chain = self._owner_chain(position, start_node or self._random_start())
        for node in chain:
            values = self._storage.get(node, {}).get(position)
            if values:
                return set(values)
        return set()

    def remove(self, key: str | bytes | int, value, start_node: int | None = None) -> None:
        """Remove one value from a key's set (peer departure)."""
        position = hash_key(key)
        for node in self._owner_chain(position, start_node or self._random_start()):
            values = self._storage.get(node, {}).get(position)
            if values is not None:
                values.discard(value)

    def handle_node_loss(self, node_id: int) -> None:
        """Drop a node's storage and re-stabilise (crash simulation)."""
        self._storage.pop(node_id, None)
        self._ring.leave(node_id)
        self._ring.stabilize()
        for node in self._ring.node_ids:
            self._storage.setdefault(node, {})
