"""Chord (Stoica et al., SIGCOMM 2001): ring, fingers, lookup, churn.

The ring maps hashed node ids to :class:`ChordNode` s carrying finger
tables and successor lists.  Lookups are iterative — the caller hops from
node to node, as a peer-hosted key-value service would — and report hop
counts so mechanism evaluations can account for lookup cost.

Churn is supported through :meth:`ChordRing.join` / :meth:`ChordRing.leave`
followed by :meth:`ChordRing.stabilize`, which repairs successors and
refreshes fingers exactly as Chord's periodic stabilisation does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dht.hashing import RING_BITS, hash_node, in_interval
from repro.util.errors import DataError

#: Successor-list length (tolerates that many consecutive failures).
SUCCESSOR_LIST_LENGTH = 4


@dataclass
class ChordNode:
    """One DHT participant."""

    node_id: int  # application-level id (host id)
    ring_id: int  # position on the ring
    fingers: list[int] = field(default_factory=list)  # ring positions' owners
    successors: list[int] = field(default_factory=list)  # node_ids, nearest first
    predecessor: int | None = None

    def __post_init__(self) -> None:
        if not self.fingers:
            self.fingers = [self.node_id] * RING_BITS


class ChordRing:
    """A Chord ring over a set of participant node ids."""

    def __init__(self) -> None:
        self._nodes: dict[int, ChordNode] = {}
        self._sorted_ring: list[tuple[int, int]] = []  # (ring_id, node_id)
        self._dirty = True

    # -- membership -----------------------------------------------------------

    @property
    def node_ids(self) -> list[int]:
        return list(self._nodes)

    @property
    def size(self) -> int:
        return len(self._nodes)

    def node(self, node_id: int) -> ChordNode:
        try:
            return self._nodes[node_id]
        except KeyError as exc:
            raise DataError(f"node {node_id} is not in the ring") from exc

    @classmethod
    def build(cls, node_ids: list[int]) -> "ChordRing":
        """Construct a stabilised ring over ``node_ids`` directly."""
        ring = cls()
        for node_id in node_ids:
            ring._insert(node_id)
        ring.stabilize()
        return ring

    def _insert(self, node_id: int) -> None:
        if node_id in self._nodes:
            raise DataError(f"node {node_id} already joined")
        self._nodes[node_id] = ChordNode(node_id=node_id, ring_id=hash_node(node_id))
        self._dirty = True

    def join(self, node_id: int) -> None:
        """Add a node; call :meth:`stabilize` to repair pointers."""
        self._insert(node_id)

    def leave(self, node_id: int) -> None:
        """Remove a node (ungraceful departure); stabilise afterwards."""
        if node_id not in self._nodes:
            raise DataError(f"node {node_id} is not in the ring")
        del self._nodes[node_id]
        self._dirty = True

    # -- pointer maintenance -----------------------------------------------------

    def _refresh_sorted(self) -> None:
        if self._dirty:
            self._sorted_ring = sorted(
                (node.ring_id, node.node_id) for node in self._nodes.values()
            )
            self._dirty = False

    def successor_of_position(self, position: int) -> int:
        """The node owning ring position ``position``."""
        if not self._nodes:
            raise DataError("the ring is empty")
        self._refresh_sorted()
        import bisect

        index = bisect.bisect_left(self._sorted_ring, (position, -1))
        if index == len(self._sorted_ring):
            index = 0
        return self._sorted_ring[index][1]

    def stabilize(self) -> None:
        """Repair successors/predecessors and refresh all finger tables.

        Equivalent to running Chord's periodic stabilisation to quiescence
        for the current membership.
        """
        if not self._nodes:
            return
        self._refresh_sorted()
        ring = self._sorted_ring
        n = len(ring)
        for index, (_ring_id, node_id) in enumerate(ring):
            node = self._nodes[node_id]
            node.successors = [
                ring[(index + 1 + k) % n][1]
                for k in range(min(SUCCESSOR_LIST_LENGTH, n - 1))
            ] or [node_id]
            node.predecessor = ring[(index - 1) % n][1]
            node.fingers = [
                self.successor_of_position((node.ring_id + (1 << k)) % (1 << RING_BITS))
                for k in range(RING_BITS)
            ]

    # -- lookup -------------------------------------------------------------------

    def closest_preceding_node(self, from_node: int, key_position: int) -> int:
        """The finger of ``from_node`` most closely preceding ``key_position``."""
        node = self.node(from_node)
        for finger_owner in reversed(node.fingers):
            if finger_owner == from_node or finger_owner not in self._nodes:
                continue
            finger_ring = self._nodes[finger_owner].ring_id
            if in_interval(finger_ring, node.ring_id, key_position, inclusive_right=False):
                return finger_owner
        return node.successors[0] if node.successors else from_node

    def lookup(self, start_node: int, key_position: int, max_hops: int = 128) -> tuple[int, int]:
        """Iteratively resolve ``key_position`` from ``start_node``.

        Returns ``(owner_node_id, hops)``.  Raises if routing loops beyond
        ``max_hops`` (a stabilisation bug, not expected in practice).
        """
        current = start_node
        hops = 0
        for _ in range(max_hops):
            node = self.node(current)
            successor = node.successors[0] if node.successors else current
            successor_ring = self._nodes[successor].ring_id
            if in_interval(key_position, node.ring_id, successor_ring):
                return successor, hops + 1
            nxt = self.closest_preceding_node(current, key_position)
            if nxt == current:
                return current, hops
            current = nxt
            hops += 1
        raise DataError(f"lookup exceeded {max_hops} hops — ring not stabilised?")
