"""Chord DHT substrate.

Section 5's UCL and IP-prefix mechanisms "require a key-value mapping
infrastructure ... the participant peers can themselves host the key-value
maps, using one of several distributed hash table designs (Chord, CAN,
Pastry)".  This package provides that substrate: consistent hashing, a
Chord ring with finger tables / successor lists / iterative lookup /
join-stabilise churn handling, and a replicated multi-value key-value store
on top (IP addresses hash to keys, per the paper's note that raw IPs are
not uniformly distributed).
"""

from repro.dht.chord import ChordNode, ChordRing
from repro.dht.hashing import hash_key, hash_node, ring_distance
from repro.dht.kvstore import DhtKeyValueStore, LookupStats

__all__ = [
    "ChordRing",
    "ChordNode",
    "hash_key",
    "hash_node",
    "ring_distance",
    "DhtKeyValueStore",
    "LookupStats",
]
