"""Synthetic stand-in for the Meridian DNS-server latency dataset.

The paper samples cluster-hub positions from the Meridian dataset, whose
"DNS-server pairs have a median latency of around 65 ms".  We generate a
statistically comparable matrix:

* nodes are placed on a 2-D geographic plane with a few population centres
  (continents), so the latency distribution is multi-modal like real
  wide-area RTTs (intra-continent ~10-50 ms, trans-continent ~100-250 ms);
* each node carries an access penalty (last-mile delay) added to every RTT;
* each pair gets lognormal jitter plus occasional inflation (circuitous
  routes), so the triangle inequality is violated at realistic low rates;
* the whole matrix is rescaled so the median pairwise RTT matches the
  requested target (65 ms by default).

Only the distribution's scale and rough shape matter to the paper's
experiments — hubs just need to be "far apart relative to intra-cluster
latencies".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import make_rng
from repro.util.validate import require_in_range, require_positive

#: Median RTT of the real Meridian dataset per the paper.
MERIDIAN_MEDIAN_MS = 65.0


@dataclass(frozen=True)
class SyntheticCoreConfig:
    """Parameters of the synthetic wide-area latency generator."""

    n_nodes: int
    median_ms: float = MERIDIAN_MEDIAN_MS
    n_continents: int = 4
    continent_spread_ms: float = 18.0  # one-way geographic spread inside a continent
    inter_continent_ms: float = 55.0  # one-way distance scale between continents
    # Nodes clump into metro areas (DNS servers concentrate in cities); the
    # real Meridian dataset has many near-co-located servers, which is what
    # creates confusable "twin clusters" when many hubs are sampled.
    nodes_per_metro: float = 8.0
    metro_spread_ms: float = 1.2  # one-way scatter of nodes within a metro
    access_penalty_low_ms: float = 0.25
    access_penalty_high_ms: float = 3.0
    jitter_sigma: float = 0.10
    inflation_probability: float = 0.05
    inflation_factor_high: float = 1.8

    def __post_init__(self) -> None:
        require_positive(self.n_nodes, "n_nodes")
        require_positive(self.median_ms, "median_ms")
        require_positive(self.n_continents, "n_continents")
        require_in_range(self.inflation_probability, "inflation_probability", 0.0, 1.0)


def _node_positions(config: SyntheticCoreConfig, rng: np.random.Generator) -> np.ndarray:
    """Place nodes around continent centres on a 2-D plane (one-way-ms units)."""
    angles = np.linspace(0.0, 2.0 * np.pi, config.n_continents, endpoint=False)
    centres = config.inter_continent_ms * np.stack(
        [np.cos(angles), np.sin(angles)], axis=1
    )
    # Continents have unequal populations, like the real Internet.
    weights = rng.dirichlet(np.full(config.n_continents, 2.0))
    n_metros = max(4, int(round(config.n_nodes / config.nodes_per_metro)))
    metro_continent = rng.choice(config.n_continents, size=n_metros, p=weights)
    metro_scatter = rng.normal(0.0, config.continent_spread_ms, size=(n_metros, 2))
    metro_positions = centres[metro_continent] + metro_scatter
    node_metro = rng.choice(n_metros, size=config.n_nodes)
    node_scatter = rng.normal(0.0, config.metro_spread_ms, size=(config.n_nodes, 2))
    return metro_positions[node_metro] + node_scatter


def synthetic_core_matrix(
    n_nodes: int,
    seed: int | np.random.Generator | None = None,
    config: SyntheticCoreConfig | None = None,
) -> np.ndarray:
    """Generate an ``n_nodes`` x ``n_nodes`` wide-area RTT matrix.

    Returns a plain numpy array (symmetric, zero diagonal) so callers can
    wrap it in :class:`~repro.latency.matrix.LatencyMatrix` or slice it
    directly for cluster-hub placement.
    """
    if config is None:
        config = SyntheticCoreConfig(n_nodes=n_nodes)
    elif config.n_nodes != n_nodes:
        config = SyntheticCoreConfig(**{**config.__dict__, "n_nodes": n_nodes})
    rng = make_rng(seed)

    positions = _node_positions(config, rng)
    diff = positions[:, None, :] - positions[None, :, :]
    geographic_one_way = np.sqrt(np.sum(diff * diff, axis=2))
    rtt = 2.0 * geographic_one_way

    access = rng.uniform(
        config.access_penalty_low_ms, config.access_penalty_high_ms, size=n_nodes
    )
    rtt += access[:, None] + access[None, :]

    jitter = rng.normal(0.0, config.jitter_sigma, size=(n_nodes, n_nodes))
    jitter = np.triu(jitter, k=1)
    jitter = jitter + jitter.T  # symmetric jitter
    rtt *= np.exp(jitter)

    inflate = rng.random(size=(n_nodes, n_nodes)) < config.inflation_probability
    inflate = np.triu(inflate, k=1)
    inflate = inflate | inflate.T
    factors = rng.uniform(1.1, config.inflation_factor_high, size=(n_nodes, n_nodes))
    factors = np.triu(factors, k=1)
    factors = factors + factors.T + np.eye(n_nodes)
    rtt = np.where(inflate, rtt * factors, rtt)

    np.fill_diagonal(rtt, 0.0)

    # Rescale to the target median.
    iu = np.triu_indices(n_nodes, k=1)
    if iu[0].size:
        current_median = float(np.median(rtt[iu]))
        if current_median > 0:
            rtt *= config.median_ms / current_median
    return rtt


def sample_hub_latencies(
    core: np.ndarray,
    n_hubs: int,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Pick ``n_hubs`` random rows/columns of a core matrix for cluster-hubs.

    Mirrors the paper's "each cluster-hub is represented by a randomly
    picked DNS server from the dataset".  Sampling is without replacement
    when possible.
    """
    rng = make_rng(seed)
    n = core.shape[0]
    replace = n_hubs > n
    ids = rng.choice(n, size=n_hubs, replace=replace)
    return core[np.ix_(ids, ids)]
