"""Assemble full inter-peer latency oracles per the paper's Section 4 recipe.

This is the one-stop constructor the Meridian experiments use: given the
cluster parameters, it generates a synthetic Meridian-like core, samples
cluster-hubs from it, builds the :class:`ClusteredTopology`, and returns a
dense :class:`MatrixOracle` plus the topology (for ground truth).

For populations where a dense matrix is unaffordable (n=1,000,000 peers
would need an 8 TB array), :func:`build_sparse_clustered_world` replays
the exact same draw sequence but serves latencies straight from the
topology's O(1)-per-pair path model — same world, no matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.latency.matrix import LatencyMatrix
from repro.latency.synthetic import SyntheticCoreConfig, sample_hub_latencies, synthetic_core_matrix
from repro.topology.clustered import ClusteredConfig, ClusteredTopology
from repro.topology.oracle import LatencyOracle, MatrixOracle
from repro.util.rng import make_rng


@dataclass(frozen=True)
class ClusteredWorld:
    """A clustered topology together with its latency oracle.

    ``matrix`` is ``None`` for matrix-free (sparse) worlds, where the
    oracle is the topology itself; scoring paths that need full row
    scans fall back to :meth:`ClusteredTopology.latencies_from`.
    """

    topology: ClusteredTopology
    oracle: LatencyOracle
    matrix: LatencyMatrix | None


#: Size of the synthetic stand-in for the Meridian DNS dataset.  The paper
#: samples cluster-hubs from a fixed ~2500-server dataset; keeping the pool
#: size fixed (not scaled with the cluster count) preserves the property
#: that sampling *many* hubs yields near-co-located "twin" hubs while
#: sampling few does not.
DEFAULT_CORE_POOL = 2000


def build_clustered_oracle(
    config: ClusteredConfig,
    seed: int | None = None,
    core_pool_size: int | None = None,
) -> ClusteredWorld:
    """Build the full Section 4 world for one simulation run.

    ``core_pool_size`` controls how many synthetic "DNS servers" the hub
    sample is drawn from (default :data:`DEFAULT_CORE_POOL`).
    """
    rng = make_rng(seed)
    pool = core_pool_size or max(DEFAULT_CORE_POOL, config.n_clusters)
    core_full = synthetic_core_matrix(
        pool, seed=rng, config=SyntheticCoreConfig(n_nodes=pool)
    )
    core = sample_hub_latencies(core_full, config.n_clusters, seed=rng)
    topology = ClusteredTopology.generate(config, core, seed=rng)
    matrix = LatencyMatrix.from_array(topology.full_matrix(), check_symmetry=False)
    return ClusteredWorld(
        topology=topology,
        oracle=MatrixOracle(matrix.values),
        matrix=matrix,
    )


def build_sparse_clustered_world(
    config: ClusteredConfig,
    seed: int | None = None,
    core_pool_size: int | None = None,
) -> ClusteredWorld:
    """Build the Section 4 world without materialising the latency matrix.

    Replays :func:`build_clustered_oracle`'s draw sequence exactly (core
    matrix, hub sample, topology), so the same seed yields the same
    world; the topology itself is the oracle — its ``latencies_from`` /
    ``latency_block`` answer batch draws from the path model in O(pairs),
    bit-identical to the dense matrix's slices.  Memory is O(n) instead
    of O(n²): the only way to hold a million-peer population.
    """
    rng = make_rng(seed)
    pool = core_pool_size or max(DEFAULT_CORE_POOL, config.n_clusters)
    core_full = synthetic_core_matrix(
        pool, seed=rng, config=SyntheticCoreConfig(n_nodes=pool)
    )
    core = sample_hub_latencies(core_full, config.n_clusters, seed=rng)
    topology = ClusteredTopology.generate(config, core, seed=rng)
    return ClusteredWorld(topology=topology, oracle=topology, matrix=None)
