"""Validated dense latency matrices.

:class:`LatencyMatrix` wraps a numpy array with the invariants every latency
dataset must satisfy (square, symmetric, zero diagonal, non-negative,
finite), plus summary statistics and persistence.  Simulators index the raw
array directly via :attr:`values` for speed; everything else goes through
the checked constructors.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.util.errors import DataError


@dataclass(frozen=True)
class LatencyMatrix:
    """A symmetric RTT matrix in milliseconds."""

    values: np.ndarray

    @classmethod
    def from_array(cls, array: np.ndarray, check_symmetry: bool = True) -> "LatencyMatrix":
        """Validate and wrap ``array``.

        ``check_symmetry=False`` skips the O(n^2) symmetry check for large
        matrices that are symmetric by construction.
        """
        arr = np.asarray(array, dtype=float)
        if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
            raise DataError(f"latency matrix must be square, got shape {arr.shape}")
        if not np.all(np.isfinite(arr)):
            raise DataError("latency matrix contains non-finite entries")
        if np.any(arr < 0):
            raise DataError("latency matrix contains negative entries")
        if not np.allclose(np.diag(arr), 0.0):
            raise DataError("latency matrix diagonal must be zero")
        if check_symmetry and not np.allclose(arr, arr.T):
            raise DataError("latency matrix must be symmetric")
        return cls(values=arr)

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self.values.shape[0]

    def off_diagonal(self) -> np.ndarray:
        """All pairwise latencies (upper triangle, flattened, row-major).

        Assembled from per-row flat-view slices rather than
        ``triu_indices`` — the index arrays would cost ~8n² bytes on large
        matrices, an order of magnitude more than the result itself.
        """
        n = self.n
        if n < 2:
            return np.empty(0, dtype=self.values.dtype)
        flat = np.ascontiguousarray(self.values).reshape(-1)
        return np.concatenate(
            [flat[i * n + i + 1 : (i + 1) * n] for i in range(n - 1)]
        )

    @property
    def median_ms(self) -> float:
        """Median pairwise latency."""
        return float(np.median(self.off_diagonal()))

    def submatrix(self, ids: np.ndarray) -> "LatencyMatrix":
        """Restrict to the given node ids (in the given order)."""
        idx = np.asarray(ids, dtype=int)
        return LatencyMatrix(values=self.values[np.ix_(idx, idx)])

    def triangle_violation_fraction(self, samples: int = 2000, seed: int = 0) -> float:
        """Fraction of sampled triangles violating the triangle inequality.

        Real latency datasets violate the triangle inequality; synthetic
        stand-ins should too (the paper's argument does not rely on
        metricity, and Meridian is robust to mild violations).
        """
        rng = np.random.default_rng(seed)
        if self.n < 3:
            return 0.0
        triples = rng.integers(0, self.n, size=(samples, 3))
        ok = (triples[:, 0] != triples[:, 1]) & (triples[:, 1] != triples[:, 2])
        ok &= triples[:, 0] != triples[:, 2]
        triples = triples[ok]
        if triples.size == 0:
            return 0.0
        a, b, c = triples[:, 0], triples[:, 1], triples[:, 2]
        direct = self.values[a, c]
        via = self.values[a, b] + self.values[b, c]
        return float(np.mean(direct > via * (1 + 1e-9)))

    def save(self, path: str | Path) -> None:
        """Persist to a compressed ``.npz`` file."""
        np.savez_compressed(Path(path), values=self.values)

    @classmethod
    def load(cls, path: str | Path) -> "LatencyMatrix":
        """Load a matrix previously written by :meth:`save`."""
        with np.load(Path(path)) as data:
            if "values" not in data:
                raise DataError(f"{path} is not a LatencyMatrix archive")
            return cls.from_array(data["values"], check_symmetry=False)
