"""Latency dataset substrate.

The paper drives its Meridian simulations from the Meridian DNS-server
latency dataset ("DNS-server pairs in the Meridian dataset have a median
latency of around 65 ms").  That dataset is not redistributable, so
:mod:`repro.latency.synthetic` generates a statistically comparable stand-in
(geographic embedding + access penalties + jitter, calibrated to the same
median), and :mod:`repro.latency.builder` assembles full inter-peer matrices
per the Section 4 recipe.
"""

from repro.latency.builder import build_clustered_oracle, build_sparse_clustered_world
from repro.latency.matrix import LatencyMatrix
from repro.latency.synthetic import SyntheticCoreConfig, synthetic_core_matrix

__all__ = [
    "LatencyMatrix",
    "SyntheticCoreConfig",
    "synthetic_core_matrix",
    "build_clustered_oracle",
    "build_sparse_clustered_world",
]
