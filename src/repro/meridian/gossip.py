"""Gossip-based Meridian ring maintenance on the event simulator.

The direct overlay constructor in :mod:`repro.meridian.overlay` reproduces
Meridian's *converged* state; this module runs the actual protocol dynamics:
each node periodically picks a random acquaintance, requests a sample of its
ring members, probes the returned nodes and files them into rings.  Used by
tests (to show the direct construction approximates the protocol's fixed
point) and by the quickstart example.

The same ``ring_request``/``ring_reply`` exchange, collapsed off the event
loop, powers the churn-time **ring-repair pass**
(:func:`repair_overlay_rings`): after departures thin an overlay's rings,
each underfull node pulls candidate samples from its surviving ring
neighbours (free metadata, as a gossip reply is), probes the unknown ones
through the caller's counted-maintenance channel and files them back into
rings — which is how a live deployment re-fattens rings without waiting for
fresh arrivals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.meridian.overlay import MeridianConfig, MeridianNode, MeridianOverlay
from repro.netsim.engine import EventHandle, EventLoop
from repro.netsim.network import Message, Network, SimNode
from repro.topology.oracle import LatencyOracle, oracle_probe_many
from repro.util.errors import DataError
from repro.util.rng import make_rng


@dataclass(frozen=True)
class GossipConfig:
    """Protocol timing and sizing."""

    period_ms: float = 2_000.0  # ring-maintenance interval
    exchange_size: int = 16  # members shared per gossip exchange
    initial_contacts: int = 8  # bootstrap acquaintances per node
    jitter_ms: float = 500.0  # desynchronises the periodic timers


class GossipMeridianNode(SimNode):
    """A Meridian node whose rings are fed by gossip exchanges."""

    def __init__(
        self,
        node_id: int,
        meridian_config: MeridianConfig,
        gossip_config: GossipConfig,
        probe_oracle: LatencyOracle,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(node_id)
        self.state = MeridianNode(node_id, meridian_config)
        self._gossip = gossip_config
        self._probe_oracle = probe_oracle
        self._probe_many = oracle_probe_many(probe_oracle)
        self._rng = rng

    # -- protocol ----------------------------------------------------------

    def attached(self, network: Network) -> None:
        delay = float(self._rng.uniform(0.0, self._gossip.jitter_ms))
        self.set_timer(delay, "tick")

    def _learn(self, member: int) -> None:
        if member == self.node_id:
            return
        if member in self.state.all_members():
            return
        latency = float(self._probe_many(self.node_id, [member])[0])
        self.state.insert(member, latency)
        self._cap_ring(self.state.ring_of(latency))

    def _learn_many(self, members) -> None:
        """Probe and file a whole gossip exchange as one batched round.

        One ``batch_latencies_from`` call over the payload's distinct ids
        replaces the per-member scalar probes of :meth:`_learn`; the
        filing loop then replays the scalar discipline exactly —
        re-checking membership *per item*, so an id evicted by a ring cap
        earlier in the same payload is re-inserted just as the scalar
        loop would.  For noise-free oracles the resulting rings are
        identical; only the probe access pattern changes (the batch may
        measure ids that turn out to be already known).
        """
        distinct = [
            m
            for m in dict.fromkeys(int(m) for m in members)
            if m != self.node_id
        ]
        if not distinct:
            return
        values = dict(zip(distinct, self._probe_many(self.node_id, distinct)))
        for member in (int(m) for m in members):
            if member == self.node_id or member in self.state.all_members():
                continue
            latency = float(values[member])
            self.state.insert(member, latency)
            self._cap_ring(self.state.ring_of(latency))

    def _cap_ring(self, ring_index: int) -> None:
        """Evict a random member when a ring overflows.

        Random eviction (rather than full diversity re-selection on every
        insert) matches Meridian's incremental behaviour; the periodic
        re-selection happens in :func:`run_gossip_overlay`'s final pass.
        """
        ring = self.state.rings[ring_index]
        limit = 2 * self.state.config.ring_size
        if len(ring) > limit:
            victim = self._rng.choice(list(ring))
            del ring[int(victim)]

    def _sample_members(self, count: int) -> list[int]:
        return sample_ring_members(self.state, count, self._rng)

    def on_message(self, message: Message) -> None:
        if message.kind == "tick":
            members = list(self.state.all_members())
            if members:
                partner = int(self._rng.choice(members))
                self.send(partner, "ring_request")
            self.set_timer(self._gossip.period_ms, "tick")
        elif message.kind == "ring_request":
            sample = self._sample_members(self._gossip.exchange_size)
            self.send(message.src, "ring_reply", payload=sample)
        elif message.kind == "ring_reply":
            self._learn_many(message.payload)


#: Exchange rounds one repair pass may spend per underfull node before
#: giving up (overlapping replies from drained neighbours converge fast;
#: this only bounds the pathological fully-overlapping case).
_MAX_REPAIR_ROUNDS = 4


def sample_ring_members(
    state: MeridianNode, count: int, rng: np.random.Generator
) -> list[int]:
    """A gossip reply: a uniform sample of ``state``'s ring members.

    The one exchange payload of the protocol, shared by the live
    simulator's ``ring_request`` handler and the collapsed repair pass.
    """
    members = list(state.all_members())
    if not members:
        return []
    count = min(count, len(members))
    return [int(m) for m in rng.choice(members, size=count, replace=False)]


def repair_overlay_rings(
    overlay: MeridianOverlay,
    probe_many,
    rng: np.random.Generator,
    exchange_size: int = 16,
    occupancy_floor: int | None = None,
) -> int:
    """Gossip-style ring repair after departures; returns nodes repaired.

    Departures only ever *evict* ring entries, so under sustained churn
    rings thin out until arrivals re-fatten them.  This pass runs the
    gossip exchange to quiescence for every node whose total ring
    occupancy fell below its floor:

    1. the node asks surviving ring members for a
       :func:`sample_ring_members` payload each — candidate *identities*
       are gossip metadata and cost nothing, exactly as a ``ring_reply``
       does on the event loop;
    2. previously unknown candidates are probed through ``probe_many``
       (``(node_id, candidates) -> latencies``) — the caller supplies the
       counted-maintenance channel, so every repair measurement is billed;
    3. measured candidates are filed with the incremental random-eviction
       cap (:func:`repro.meridian.overlay.insert_with_cap`).

    The default floor is *per node*: half of the node's own
    :attr:`~repro.meridian.overlay.MeridianNode.peak_occupancy`, capped by
    the live population.  Ring caps and the latency distribution bound
    what a node's rings can structurally hold (in a clustered world most
    members land in a few capped rings), so a floor derived from the raw
    knowledge size can sit *above* that bound — every node then stays
    "underfull" forever and re-repairs on each event.  Half of the
    demonstrated peak is always reachable and leaves repair quiescent
    under steady churn, firing only after genuine drain.  Pass
    ``occupancy_floor`` to pin one explicit floor for every node instead.

    A node with no surviving acquaintances bootstraps from uniformly
    random live members, as a rejoining node would.
    """
    from repro.meridian.overlay import insert_with_cap

    n = overlay.n_members
    if n < 2:
        return 0
    repaired = 0
    member_ids = overlay.member_ids
    # Underfull selection is one vectorised comparison over the overlay's
    # occupancy arrays; nodes at or above their floor never drew from the
    # rng in the scalar scan, so restricting the loop to the underfull
    # set is draw-for-draw identical.
    counts, peaks = overlay.occupancy_vectors()
    if occupancy_floor is not None:
        floors = np.full(member_ids.size, occupancy_floor, dtype=np.int64)
    else:
        floors = np.maximum(1, np.minimum(peaks, n - 1) // 2)
    for index in np.flatnonzero(counts < floors):
        node = overlay.nodes[int(member_ids[index])]
        floor = int(floors[index])
        # Exchange rounds to quiescence: drained neighbours offer thin
        # replies at first, so keep pulling (against progressively
        # repaired views) until the floor is met or a round goes dry.
        for _ in range(_MAX_REPAIR_ROUNDS):
            known = node.all_members()
            deficit = floor - len(known)
            if deficit <= 0:
                break
            neighbours = list(known)
            if not neighbours:
                pool = member_ids[member_ids != node.node_id]
                take = min(max(deficit, 1), pool.size)
                neighbours = [
                    int(m) for m in rng.choice(pool, size=take, replace=False)
                ]
            # Enough exchanges to cover the deficit if replies were disjoint.
            n_partners = min(
                len(neighbours), max(1, -(-deficit // max(1, exchange_size)))
            )
            partners = [
                int(m)
                for m in rng.choice(neighbours, size=n_partners, replace=False)
            ]
            # Bootstrap partners are themselves unknown: probe and file
            # them first, then whatever their replies surface.
            candidates = [p for p in partners if p not in known]
            seen = set(known)
            seen.add(node.node_id)
            seen.update(partners)
            for partner in partners:
                for member in sample_ring_members(
                    overlay.nodes[partner], exchange_size, rng
                ):
                    if member not in seen:
                        seen.add(member)
                        candidates.append(member)
            if len(candidates) > deficit:
                pick = rng.choice(len(candidates), size=deficit, replace=False)
                candidates = [candidates[int(i)] for i in sorted(pick)]
            if not candidates:
                break  # the neighbourhood has nothing new to offer
            latencies = probe_many(
                node.node_id, np.asarray(candidates, dtype=int)
            )
            for member, latency in zip(candidates, latencies):
                insert_with_cap(node, int(member), float(latency), rng)
        if node.member_count() >= floor:
            repaired += 1
    return repaired


class PeriodicRepair:
    """Re-drives ring repair *continuously* on an event loop.

    :func:`repair_overlay_rings` was built as a one-shot pass after a
    departure; a live deployment instead runs the repair gossip as a
    background process.  This driver schedules one repair pass per
    ``period_ms`` of simulated time (the simulated-time query daemon wires
    it to :meth:`repro.algorithms.meridian_search.MeridianSearch.repair_rings`,
    whose measurements are all billed as maintenance), accumulates
    pass/repair/probe totals, and reschedules itself until :meth:`stop` —
    so under sustained churn the overlay's rings are re-fattened on the
    same clock the departures land on, instead of only at leave-event
    boundaries.
    """

    def __init__(
        self,
        loop: EventLoop,
        period_ms: float,
        repair: Callable[[], tuple[int, int]],
    ) -> None:
        if period_ms <= 0:
            raise DataError(f"repair period must be > 0, got {period_ms}")
        self.loop = loop
        self.period_ms = float(period_ms)
        self._repair = repair
        #: Repair passes run so far.
        self.passes = 0
        #: Underfull nodes brought back above their floor, summed over passes.
        self.nodes_repaired = 0
        #: Counted maintenance probes the passes spent, summed.
        self.probes_spent = 0
        self._handle: EventHandle | None = None
        self._stopped = False

    def start(self, initial_delay_ms: float | None = None) -> None:
        """Schedule the first pass (after one period unless overridden)."""
        delay = self.period_ms if initial_delay_ms is None else initial_delay_ms
        self._handle = self.loop.schedule(delay, self._tick)

    def _tick(self) -> None:
        if self._stopped:
            return
        repaired, spent = self._repair()
        self.passes += 1
        self.nodes_repaired += int(repaired)
        self.probes_spent += int(spent)
        self._handle = self.loop.schedule(self.period_ms, self._tick)

    def stop(self) -> None:
        """Cancel the pending pass and stop rescheduling."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()


def run_gossip_overlay(
    oracle: LatencyOracle,
    member_ids: np.ndarray | list[int],
    meridian_config: MeridianConfig | None = None,
    gossip_config: GossipConfig | None = None,
    rounds: int = 12,
    seed: int | np.random.Generator | None = None,
) -> MeridianOverlay:
    """Run the gossip protocol and return the resulting overlay.

    The event simulation runs for ``rounds`` maintenance periods, after
    which each over-full ring is reduced by the configured diversity
    selection — Meridian's periodic ring re-selection.
    """
    meridian_config = meridian_config or MeridianConfig()
    gossip_config = gossip_config or GossipConfig()
    rng = make_rng(seed)
    members = np.asarray(member_ids, dtype=int)
    if members.size < 2:
        raise DataError("an overlay needs at least two members")

    loop = EventLoop()
    network = Network(loop, oracle, seed=rng)
    nodes: dict[int, GossipMeridianNode] = {}
    for node_id in members:
        node = GossipMeridianNode(
            int(node_id), meridian_config, gossip_config, oracle, rng
        )
        nodes[int(node_id)] = node
        network.attach(node)
    # Bootstrap: everyone knows a few random contacts (one batched probe
    # round per node instead of a scalar probe per contact).
    for node_id, node in nodes.items():
        others = members[members != node_id]
        contacts = rng.choice(
            others,
            size=min(gossip_config.initial_contacts, others.size),
            replace=False,
        )
        node._learn_many(contacts)

    loop.run_until(rounds * gossip_config.period_ms)

    # Final diversity pass, then freeze into a plain overlay.
    from repro.meridian.overlay import _select_ring_members
    from repro.topology.oracle import oracle_pairwise

    pairwise = oracle_pairwise(oracle)
    frozen: dict[int, MeridianNode] = {}
    for node_id, node in nodes.items():
        state = node.state
        for index, ring in enumerate(state.rings):
            if len(ring) <= meridian_config.ring_size:
                continue
            candidates = np.fromiter(ring.keys(), dtype=int)
            keep = _select_ring_members(
                candidates,
                meridian_config,
                pairwise,
            )
            kept = {int(candidates[i]) for i in keep}
            state.rings[index] = {m: lat for m, lat in ring.items() if m in kept}
        frozen[node_id] = state
    return MeridianOverlay(config=meridian_config, member_ids=members, nodes=frozen)
