"""Gossip-based Meridian ring maintenance on the event simulator.

The direct overlay constructor in :mod:`repro.meridian.overlay` reproduces
Meridian's *converged* state; this module runs the actual protocol dynamics:
each node periodically picks a random acquaintance, requests a sample of its
ring members, probes the returned nodes and files them into rings.  Used by
tests (to show the direct construction approximates the protocol's fixed
point) and by the quickstart example.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.meridian.overlay import MeridianConfig, MeridianNode, MeridianOverlay
from repro.netsim.engine import EventLoop
from repro.netsim.network import Message, Network, SimNode
from repro.topology.oracle import LatencyOracle, batch_latencies_from
from repro.util.errors import DataError
from repro.util.rng import make_rng


@dataclass(frozen=True)
class GossipConfig:
    """Protocol timing and sizing."""

    period_ms: float = 2_000.0  # ring-maintenance interval
    exchange_size: int = 16  # members shared per gossip exchange
    initial_contacts: int = 8  # bootstrap acquaintances per node
    jitter_ms: float = 500.0  # desynchronises the periodic timers


class GossipMeridianNode(SimNode):
    """A Meridian node whose rings are fed by gossip exchanges."""

    def __init__(
        self,
        node_id: int,
        meridian_config: MeridianConfig,
        gossip_config: GossipConfig,
        probe_oracle: LatencyOracle,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(node_id)
        self.state = MeridianNode(node_id, meridian_config)
        self._gossip = gossip_config
        self._probe_oracle = probe_oracle
        self._rng = rng

    # -- protocol ----------------------------------------------------------

    def attached(self, network: Network) -> None:
        delay = float(self._rng.uniform(0.0, self._gossip.jitter_ms))
        self.set_timer(delay, "tick")

    def _learn(self, member: int) -> None:
        if member == self.node_id:
            return
        if member in self.state.all_members():
            return
        latency = self._probe_oracle.latency_ms(self.node_id, member)
        self.state.insert(member, latency)
        self._cap_ring(self.state.ring_of(latency))

    def _learn_many(self, members) -> None:
        """Probe and file a whole gossip exchange as one batched round.

        One ``batch_latencies_from`` call over the payload's distinct ids
        replaces the per-member scalar probes of :meth:`_learn`; the
        filing loop then replays the scalar discipline exactly —
        re-checking membership *per item*, so an id evicted by a ring cap
        earlier in the same payload is re-inserted just as the scalar
        loop would.  For noise-free oracles the resulting rings are
        identical; only the probe access pattern changes (the batch may
        measure ids that turn out to be already known).
        """
        distinct = [
            m
            for m in dict.fromkeys(int(m) for m in members)
            if m != self.node_id
        ]
        if not distinct:
            return
        values = dict(
            zip(
                distinct,
                batch_latencies_from(self._probe_oracle, self.node_id, distinct),
            )
        )
        for member in (int(m) for m in members):
            if member == self.node_id or member in self.state.all_members():
                continue
            latency = float(values[member])
            self.state.insert(member, latency)
            self._cap_ring(self.state.ring_of(latency))

    def _cap_ring(self, ring_index: int) -> None:
        """Evict a random member when a ring overflows.

        Random eviction (rather than full diversity re-selection on every
        insert) matches Meridian's incremental behaviour; the periodic
        re-selection happens in :func:`run_gossip_overlay`'s final pass.
        """
        ring = self.state.rings[ring_index]
        limit = 2 * self.state.config.ring_size
        if len(ring) > limit:
            victim = self._rng.choice(list(ring))
            del ring[int(victim)]

    def _sample_members(self, count: int) -> list[int]:
        members = list(self.state.all_members())
        if not members:
            return []
        count = min(count, len(members))
        return [int(m) for m in self._rng.choice(members, size=count, replace=False)]

    def on_message(self, message: Message) -> None:
        if message.kind == "tick":
            members = list(self.state.all_members())
            if members:
                partner = int(self._rng.choice(members))
                self.send(partner, "ring_request")
            self.set_timer(self._gossip.period_ms, "tick")
        elif message.kind == "ring_request":
            sample = self._sample_members(self._gossip.exchange_size)
            self.send(message.src, "ring_reply", payload=sample)
        elif message.kind == "ring_reply":
            self._learn_many(message.payload)


def run_gossip_overlay(
    oracle: LatencyOracle,
    member_ids: np.ndarray | list[int],
    meridian_config: MeridianConfig | None = None,
    gossip_config: GossipConfig | None = None,
    rounds: int = 12,
    seed: int | np.random.Generator | None = None,
) -> MeridianOverlay:
    """Run the gossip protocol and return the resulting overlay.

    The event simulation runs for ``rounds`` maintenance periods, after
    which each over-full ring is reduced by the configured diversity
    selection — Meridian's periodic ring re-selection.
    """
    meridian_config = meridian_config or MeridianConfig()
    gossip_config = gossip_config or GossipConfig()
    rng = make_rng(seed)
    members = np.asarray(member_ids, dtype=int)
    if members.size < 2:
        raise DataError("an overlay needs at least two members")

    loop = EventLoop()
    network = Network(loop, oracle, seed=rng)
    nodes: dict[int, GossipMeridianNode] = {}
    for node_id in members:
        node = GossipMeridianNode(
            int(node_id), meridian_config, gossip_config, oracle, rng
        )
        nodes[int(node_id)] = node
        network.attach(node)
    # Bootstrap: everyone knows a few random contacts (one batched probe
    # round per node instead of a scalar probe per contact).
    for node_id, node in nodes.items():
        others = members[members != node_id]
        contacts = rng.choice(
            others,
            size=min(gossip_config.initial_contacts, others.size),
            replace=False,
        )
        node._learn_many(contacts)

    loop.run_until(rounds * gossip_config.period_ms)

    # Final diversity pass, then freeze into a plain overlay.
    from repro.meridian.overlay import _select_ring_members
    from repro.topology.oracle import batch_latency_block

    frozen: dict[int, MeridianNode] = {}
    for node_id, node in nodes.items():
        state = node.state
        for index, ring in enumerate(state.rings):
            if len(ring) <= meridian_config.ring_size:
                continue
            candidates = np.fromiter(ring.keys(), dtype=int)
            keep = _select_ring_members(
                candidates,
                meridian_config,
                lambda c: batch_latency_block(oracle, c, c),
            )
            kept = {int(candidates[i]) for i in keep}
            state.rings[index] = {m: lat for m, lat in ring.items() if m in kept}
        frozen[node_id] = state
    return MeridianOverlay(config=meridian_config, member_ids=members, nodes=frozen)
