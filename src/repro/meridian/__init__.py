"""Meridian (Wong, Slivkins & Sirer, SIGCOMM 2005) reimplementation.

The paper uses "the Meridian simulator used in the Meridian paper" to show
the clustering condition defeats closest-node discovery; this package is a
faithful Python reimplementation of that algorithm:

* each node organises other nodes into **concentric rings** of exponentially
  growing radii;
* ring membership is capped (16 per ring in the paper's simulations) and
  chosen to maximise ring-member **hypervolume** so members are
  geometrically diverse;
* a **closest-node query** measures the current node's distance ``d`` to the
  target, asks ring members within ``(1 - beta) d .. (1 + beta) d`` to probe
  the target, and forwards the query to the best prober only if it improves
  on ``beta * d`` — the paper runs ``beta = 0.5``.

Under the clustering condition the ring-member diversity machinery buys
nothing — "any set of randomly chosen peers from the cluster has about the
same hypervolume" — which is exactly the failure the simulations exhibit.
"""

from repro.meridian.overlay import MeridianConfig, MeridianNode, MeridianOverlay
from repro.meridian.query import QueryResult, closest_node_query
from repro.meridian.rings import RingStructure
from repro.meridian.selection import select_hypervolume, select_maxmin
from repro.meridian.simulator import (
    MeridianTrialResult,
    run_meridian_trial,
    summarize_trials,
)

__all__ = [
    "MeridianConfig",
    "MeridianNode",
    "MeridianOverlay",
    "RingStructure",
    "QueryResult",
    "closest_node_query",
    "select_maxmin",
    "select_hypervolume",
    "MeridianTrialResult",
    "run_meridian_trial",
    "summarize_trials",
]
