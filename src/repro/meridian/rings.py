"""Meridian's concentric ring geometry.

Ring ``i`` (for ``i >= 1``) holds nodes at latency in
``(alpha * base^(i-1), alpha * base^i]``; ring 0 holds ``[0, alpha]``; the
outermost ring is unbounded.  Meridian's defaults — 1 ms inner radius,
doubling radii — are kept.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.validate import require_positive


@dataclass(frozen=True)
class RingStructure:
    """The ring radius schedule shared by every node of an overlay."""

    alpha_ms: float = 1.0
    base: float = 2.0
    n_rings: int = 9  # rings 1..n_rings; ring n_rings+... collapse into the last

    def __post_init__(self) -> None:
        require_positive(self.alpha_ms, "alpha_ms")
        if self.base <= 1.0:
            require_positive(self.base - 1.0, "base - 1")
        require_positive(self.n_rings, "n_rings")

    @property
    def ring_count(self) -> int:
        """Total rings including the innermost (index 0)."""
        return self.n_rings + 1

    def ring_index(self, latency_ms: float) -> int:
        """Ring index for a node measured at ``latency_ms``."""
        if latency_ms <= self.alpha_ms:
            return 0
        index = math.ceil(math.log(latency_ms / self.alpha_ms, self.base))
        return min(index, self.n_rings)

    def ring_bounds(self, index: int) -> tuple[float, float]:
        """(inner, outer] latency bounds of ring ``index``.

        The outermost ring's outer bound is ``inf``.
        """
        if index <= 0:
            return 0.0, self.alpha_ms
        inner = self.alpha_ms * self.base ** (index - 1)
        if index >= self.n_rings:
            return inner, math.inf
        return inner, self.alpha_ms * self.base**index

    def outer_edges(self) -> list[float]:
        """Outer bounds of every ring but the last, in ring order.

        These are the bin edges for vectorised ring assignment
        (``np.searchsorted(edges, latencies, side="left")`` reproduces
        :meth:`ring_index` element-wise); the overlay builder, incremental
        joins and the ring-repair pass all bin against the same schedule.
        """
        return [self.ring_bounds(i)[1] for i in range(self.ring_count - 1)]
