"""Ring-member selection: keep the geometrically most diverse k members.

Meridian replaces excess ring members so that the retained set "has a high
hypervolume" — diverse members give the query good coverage of the latency
space.  Two implementations:

* :func:`select_hypervolume` — Meridian's notion, greedily maximising the
  Gram-determinant volume of the members' latency-vector coordinates
  (each member's coordinate is its latency vector to the other candidates).
  Cost grows quickly; used for small candidate sets and as the reference in
  tests.

* :func:`select_maxmin` — greedy farthest-point (max-min distance)
  selection, the standard cheap diversity surrogate.  This is the overlay
  builder's default at simulation scale.

Under the clustering condition both are equally blind, which is the paper's
point: "almost all peers in the cluster would be equally good (or bad)
choices as ring members".
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import DataError


def _validate(pairwise: np.ndarray, k: int) -> np.ndarray:
    arr = np.asarray(pairwise, dtype=float)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise DataError(f"pairwise matrix must be square, got {arr.shape}")
    if k <= 0:
        raise DataError(f"k must be positive, got {k}")
    return arr


def select_maxmin(pairwise: np.ndarray, k: int) -> list[int]:
    """Pick ``k`` indices by greedy farthest-point sampling.

    Starts from the point with the largest total distance to the others
    (deterministic), then repeatedly adds the candidate whose minimum
    distance to the selected set is largest.
    """
    arr = _validate(pairwise, k)
    n = arr.shape[0]
    if k >= n:
        return list(range(n))
    first = int(np.argmax(arr.sum(axis=1)))
    selected = [first]
    min_dist = arr[first].copy()
    min_dist[first] = -np.inf
    for _ in range(k - 1):
        nxt = int(np.argmax(min_dist))
        selected.append(nxt)
        min_dist = np.minimum(min_dist, arr[nxt])
        min_dist[nxt] = -np.inf
    return selected


def _volume_proxy(coords: np.ndarray) -> float:
    """Squared-volume proxy of a point set: det of its centered Gram matrix."""
    centered = coords - coords.mean(axis=0, keepdims=True)
    gram = centered @ centered.T
    # Regularise so degenerate sets yield ~0 rather than negative noise.
    sign, logdet = np.linalg.slogdet(gram + 1e-12 * np.eye(gram.shape[0]))
    return float(logdet) if sign > 0 else -np.inf


def select_hypervolume(pairwise: np.ndarray, k: int) -> list[int]:
    """Pick ``k`` indices greedily maximising the coordinate hypervolume.

    Coordinates are the candidates' latency vectors to all candidates (the
    rows of ``pairwise``), Meridian's own trick for getting coordinates
    without an embedding.
    """
    arr = _validate(pairwise, k)
    n = arr.shape[0]
    if k >= n:
        return list(range(n))
    # Seed with the farthest pair.
    iu = np.triu_indices(n, k=1)
    flat_best = int(np.argmax(arr[iu]))
    selected = [int(iu[0][flat_best]), int(iu[1][flat_best])]
    if k == 1:
        return selected[:1]
    remaining = [i for i in range(n) if i not in selected]
    while len(selected) < k and remaining:
        best_idx, best_volume = None, -np.inf
        for candidate in remaining:
            trial = selected + [candidate]
            volume = _volume_proxy(arr[np.ix_(trial, trial)])
            if volume > best_volume:
                best_idx, best_volume = candidate, volume
        selected.append(best_idx)
        remaining.remove(best_idx)
    return selected
