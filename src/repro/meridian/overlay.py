"""Meridian overlay: per-node ring membership over a latency oracle.

The paper runs "the Meridian simulator used in the Meridian paper", which
populates each node's rings from the full latency matrix and keeps at most
``ring_size`` diverse members per ring.  :meth:`MeridianOverlay.build`
reproduces that converged state directly:

* every other member is a ring candidate (``knowledge_sample=None``), or a
  uniform sample of them (modelling an under-gossiped overlay — used by the
  ablation benchmarks);
* each over-full ring is first subsampled to ``candidate_pool`` entries
  (gossip only ever surfaces a bounded candidate set per ring) and then
  reduced to ``ring_size`` members by diversity selection
  (:mod:`repro.meridian.selection`).

A live gossip protocol on the event simulator lives in
:mod:`repro.meridian.gossip`; it converges toward the same structure and is
exercised by tests and examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.meridian.rings import RingStructure
from repro.meridian.selection import select_hypervolume, select_maxmin
from repro.topology.oracle import (
    LatencyOracle,
    oracle_pairwise,
    oracle_probe_many,
)
from repro.util.errors import ConfigurationError, DataError
from repro.util.rng import make_rng
from repro.util.validate import require_in_range, require_positive


@dataclass(frozen=True)
class MeridianConfig:
    """Overlay and query parameters (paper defaults where stated)."""

    rings: RingStructure = field(default_factory=RingStructure)
    ring_size: int = 16  # paper: "number of neighbors per ring set to 16"
    beta: float = 0.5  # paper: "β set to 0.5"
    candidate_pool: int = 48  # ring candidates surfaced before selection
    # What fraction of the membership a node has ever heard of.  Meridian's
    # gossip gives each node a partial view; 0.2 reproduces the paper's
    # accuracy regime (Fig 8's rise-to-peak-at-25-then-collapse).  Set to
    # None (with knowledge_sample=None) for an idealised full-knowledge
    # overlay.
    knowledge_fraction: float | None = 0.2
    knowledge_sample: int | None = None  # absolute override of the fraction
    selection: str = "maxmin"  # or "hypervolume"
    max_hops: int = 64

    def __post_init__(self) -> None:
        require_positive(self.ring_size, "ring_size")
        require_in_range(self.beta, "beta", 0.0, 1.0)
        require_positive(self.candidate_pool, "candidate_pool")
        if self.candidate_pool < self.ring_size:
            raise ConfigurationError("candidate_pool must be >= ring_size")
        if self.knowledge_sample is not None:
            require_positive(self.knowledge_sample, "knowledge_sample")
        if self.knowledge_fraction is not None:
            require_in_range(self.knowledge_fraction, "knowledge_fraction", 0.0, 1.0)
        if self.selection not in ("maxmin", "hypervolume"):
            raise ConfigurationError(
                f"selection must be 'maxmin' or 'hypervolume', got {self.selection!r}"
            )

    def knowledge_size(self, n_members: int) -> int | None:
        """How many members one node knows of, or ``None`` for all."""
        if self.knowledge_sample is not None:
            return min(self.knowledge_sample, n_members - 1)
        if self.knowledge_fraction is not None and self.knowledge_fraction < 1.0:
            return max(
                self.ring_size, int(round(self.knowledge_fraction * (n_members - 1)))
            )
        return None


class MeridianNode:
    """One overlay member: rings mapping member id -> measured latency."""

    def __init__(self, node_id: int, config: MeridianConfig) -> None:
        self.node_id = node_id
        self.config = config
        self.rings: list[dict[int, float]] = [
            {} for _ in range(config.rings.ring_count)
        ]
        #: Highest total ring occupancy this node ever held.  Ring caps
        #: and the latency distribution bound what a node's rings *can*
        #: hold (a clustered world concentrates members into a few capped
        #: rings), so repair targets are set relative to this demonstrated
        #: capacity, not the raw knowledge size.
        self.peak_occupancy = 0

    def ring_of(self, latency_ms: float) -> int:
        return self.config.rings.ring_index(latency_ms)

    def insert(self, member: int, latency_ms: float) -> None:
        """Place ``member`` in the ring its latency dictates (uncapped)."""
        if member == self.node_id:
            raise DataError("a node cannot be its own ring member")
        self.rings[self.ring_of(latency_ms)][member] = latency_ms
        self.note_peak()

    def note_peak(self) -> None:
        """Fold the current occupancy into :attr:`peak_occupancy`."""
        count = self.member_count()
        if count > self.peak_occupancy:
            self.peak_occupancy = count

    def evict(self, member: int) -> bool:
        """Drop ``member`` from whichever ring holds it.

        The churn-maintenance counterpart of :meth:`insert`: departures
        and ring-capacity overflows both remove entries through here.
        Returns ``False`` when the node never knew the member.
        """
        for ring in self.rings:
            if member in ring:
                del ring[member]
                return True
        return False

    def all_members(self) -> dict[int, float]:
        """Union of all rings: member -> latency."""
        merged: dict[int, float] = {}
        for ring in self.rings:
            merged.update(ring)
        return merged

    def members_within(self, low_ms: float, high_ms: float) -> list[int]:
        """Ring members whose measured latency lies in ``[low, high]``.

        This is the query-time band ``(1 ± beta) * d``; only rings
        overlapping the band are scanned.
        """
        result = []
        structure = self.config.rings
        for index, ring in enumerate(self.rings):
            inner, outer = structure.ring_bounds(index)
            if outer < low_ms or inner > high_ms:
                continue
            result.extend(m for m, lat in ring.items() if low_ms <= lat <= high_ms)
        return result

    def member_count(self) -> int:
        return sum(len(r) for r in self.rings)


class MeridianOverlay:
    """A set of Meridian nodes built over a latency oracle."""

    def __init__(
        self,
        config: MeridianConfig,
        member_ids: np.ndarray,
        nodes: dict[int, MeridianNode],
    ) -> None:
        self.config = config
        self.member_ids = member_ids
        self.nodes = nodes

    @property
    def n_members(self) -> int:
        return int(self.member_ids.size)

    def node(self, node_id: int) -> MeridianNode:
        return self.nodes[node_id]

    def occupancy_vectors(self) -> tuple[np.ndarray, np.ndarray]:
        """Ring occupancy state of every member, struct-of-arrays.

        Returns ``(counts, peaks)`` aligned with :attr:`member_ids` —
        each node's current total ring occupancy and its
        :attr:`~MeridianNode.peak_occupancy` high-water mark.  The repair
        pass derives every node's floor and selects the underfull set
        from these in one vectorised comparison instead of a per-node
        Python scan.
        """
        ids = self.member_ids
        counts = np.fromiter(
            (self.nodes[int(i)].member_count() for i in ids),
            dtype=np.int64,
            count=ids.size,
        )
        peaks = np.fromiter(
            (self.nodes[int(i)].peak_occupancy for i in ids),
            dtype=np.int64,
            count=ids.size,
        )
        return counts, peaks

    def add_node(self, node: MeridianNode) -> None:
        """Admit a populated node into the overlay (membership join)."""
        if node.node_id in self.nodes:
            raise DataError(f"node {node.node_id} is already an overlay member")
        self.nodes[node.node_id] = node
        self.member_ids = np.append(self.member_ids, node.node_id)

    def remove_node(self, node_id: int) -> MeridianNode:
        """Drop a member from the overlay (membership leave).

        Only removes the node itself; surviving nodes' ring entries for it
        must be evicted by the caller (see :meth:`MeridianNode.evict`), the
        way real departures are noticed ring by ring.
        """
        try:
            node = self.nodes.pop(node_id)
        except KeyError:
            raise DataError(f"node {node_id} is not an overlay member") from None
        self.member_ids = self.member_ids[self.member_ids != node_id]
        return node

    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        oracle: LatencyOracle,
        member_ids: np.ndarray | list[int],
        config: MeridianConfig | None = None,
        seed: int | np.random.Generator | None = None,
        probe_many=None,
        pairwise=None,
    ) -> "MeridianOverlay":
        """Construct the converged overlay (see module docstring).

        Measurements go through the ``probe_many(src, nodes)`` /
        ``pairwise(nodes)`` callables, defaulting to the raw oracle
        (standalone construction is the offline phase).  An algorithm
        embedding the overlay passes its counted channels instead, so a
        build re-run under maintenance accounting bills every probe.
        """
        config = config or MeridianConfig()
        rng = make_rng(seed)
        members = np.asarray(member_ids, dtype=int)
        if members.size < 2:
            raise DataError("an overlay needs at least two members")
        if probe_many is None:
            probe_many = oracle_probe_many(oracle)
        if pairwise is None:
            pairwise = oracle_pairwise(oracle)
        # Ring edges for vectorised assignment: index i covers (edge[i-1], edge[i]].
        edges = np.array(config.rings.outer_edges())

        nodes: dict[int, MeridianNode] = {}
        knowledge = config.knowledge_size(members.size)
        for position, node_id in enumerate(members):
            node = MeridianNode(int(node_id), config)
            others = np.delete(members, position)
            if knowledge is not None and knowledge < others.size:
                others = rng.choice(others, size=knowledge, replace=False)
            # One batched row per node instead of a scalar probe per member.
            latencies = probe_many(int(node_id), others)
            populate_node_rings(
                node,
                others,
                latencies,
                rng,
                pairwise,
                edges=edges,
            )
            nodes[int(node_id)] = node
        return cls(config=config, member_ids=members, nodes=nodes)

    def evict_everywhere(self, departed) -> None:
        """Drop every departed id from every surviving node's rings.

        The overlay-wide counterpart of :meth:`MeridianNode.evict`, run
        after :meth:`remove_node` — real departures are noticed ring by
        ring, so this is free (no measurements).
        """
        departed = [int(x) for x in departed]
        for node in self.nodes.values():
            for x in departed:
                node.evict(x)

    def average_ring_occupancy(self) -> float:
        """Mean members per non-empty ring (diagnostic)."""
        counts = [
            len(ring)
            for node in self.nodes.values()
            for ring in node.rings
            if ring
        ]
        return float(np.mean(counts)) if counts else 0.0


def populate_node_rings(
    node: MeridianNode,
    others: np.ndarray,
    latencies: np.ndarray,
    rng: np.random.Generator,
    pairwise,
    edges: np.ndarray | None = None,
) -> None:
    """File ``others`` (with measured ``latencies``) into ``node``'s rings.

    The one ring-population discipline shared by the converged build and
    incremental joins: vectorised ring binning, ``candidate_pool``
    subsampling of over-full rings, then diversity selection over the
    pairwise block ``pairwise(candidates)`` — the caller chooses how that
    block is measured (raw oracle at build time, counted maintenance
    probes on a join), so both paths bucket and select identically.
    """
    config = node.config
    ring_count = config.rings.ring_count
    if edges is None:
        edges = np.array(config.rings.outer_edges())
    ring_index = np.searchsorted(edges, latencies, side="left")
    for ring in range(ring_count):
        mask = ring_index == ring
        count = int(np.count_nonzero(mask))
        if count == 0:
            continue
        candidates = others[mask]
        cand_lat = latencies[mask]
        if count > config.candidate_pool:
            pick = rng.choice(count, size=config.candidate_pool, replace=False)
            candidates = candidates[pick]
            cand_lat = cand_lat[pick]
        for idx in _select_ring_members(candidates, config, pairwise):
            node.rings[ring][int(candidates[idx])] = float(cand_lat[idx])
    node.note_peak()


def insert_with_cap(
    node: MeridianNode, member: int, latency_ms: float, rng: np.random.Generator
) -> None:
    """Incremental insert: file ``member`` and randomly evict on overflow.

    Meridian's incremental behaviour between periodic re-selections —
    used by join advertisements and the ring-repair pass, so a capped
    ring stays at ``ring_size`` without paying a diversity-selection
    block per insert.
    """
    node.insert(member, latency_ms)
    ring = node.rings[node.ring_of(latency_ms)]
    if len(ring) > node.config.ring_size:
        victim = int(rng.choice(list(ring)))
        del ring[victim]


def _select_ring_members(
    candidates: np.ndarray,
    config: MeridianConfig,
    pairwise,
) -> "list[int] | range":
    """Indices (into ``candidates``) of the members a ring retains.

    ``pairwise`` supplies the O(k²) pairwise measurements as one dense
    block (callers choose the oracle and the accounting — raw build
    probes, counted maintenance probes, or the gossip simulator's final
    pass); both selection strategies then run on the block with numpy
    argmax/argsort operations only.
    """
    if candidates.size <= config.ring_size:
        return range(candidates.size)
    block = np.asarray(pairwise(candidates), dtype=float)
    if config.selection == "maxmin":
        return select_maxmin(block, config.ring_size)
    return select_hypervolume(block, config.ring_size)
