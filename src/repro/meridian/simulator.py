"""Batch Meridian simulations matching the paper's Section 4 protocol.

The paper: "latency matrices with about 2500 peers, out of which about 2400
randomly picked peers are picked to build a Meridian overlay.  The 100
remaining peers are used as target nodes ... 5000 Meridian closest-neighbor
queries are launched to find the closest peer to randomly chosen target
nodes."

This module is now a thin adapter over the unified trial harness
(:mod:`repro.harness`): the member/target sampling, query batching and
scoring all run through :class:`~repro.harness.engine.QueryEngine`, with
the :class:`~repro.algorithms.meridian_search.MeridianSearch` adapter
supplying the algorithm.  The protocol (and its per-seed random streams)
is bit-identical to the historical hand-rolled loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.harness.engine import QueryEngine
from repro.harness.results import AggregateStats, TrialRecord
from repro.harness.scenario import SamplingSpec
from repro.latency.builder import ClusteredWorld
from repro.meridian.overlay import MeridianConfig
from repro.topology.oracle import LatencyOracle
from repro.util.errors import DataError


@dataclass(frozen=True)
class MeridianTrialResult:
    """Aggregated outcome of one batch of queries on one world."""

    n_queries: int
    correct_closest_rate: float
    correct_cluster_rate: float
    median_found_hub_latency_ms: float  # over queries that missed the closest
    mean_probes_per_query: float
    mean_hops_per_query: float

    @classmethod
    def from_record(cls, record: TrialRecord) -> "MeridianTrialResult":
        """Project a harness trial record onto the legacy summary."""
        return cls(
            n_queries=record.n_queries,
            correct_closest_rate=record.exact_rate,
            correct_cluster_rate=record.cluster_rate,
            median_found_hub_latency_ms=record.median_wrong_hub_latency_ms,
            mean_probes_per_query=record.mean_probes_per_query,
            mean_hops_per_query=record.mean_hops_per_query,
        )


def run_meridian_trial(
    world: ClusteredWorld,
    n_targets: int = 100,
    n_queries: int = 5000,
    config: MeridianConfig | None = None,
    seed: int | np.random.Generator | None = None,
    probe_oracle: LatencyOracle | None = None,
) -> MeridianTrialResult:
    """Run one full trial (overlay build + query batch) on ``world``."""
    # Imported here: algorithms.meridian_search imports the meridian package,
    # so a module-level import would be circular.
    from repro.algorithms.meridian_search import MeridianSearch

    if n_targets >= world.topology.n_nodes:
        raise DataError(
            f"n_targets={n_targets} must be < population {world.topology.n_nodes}"
        )
    record = QueryEngine().run_world_trial(
        world,
        MeridianSearch(config),
        sampling=SamplingSpec(n_targets=n_targets),
        protocol="sampled",
        n_queries=n_queries,
        seed=seed,
        probe_oracle=probe_oracle,
    )
    return MeridianTrialResult.from_record(record)


@dataclass(frozen=True)
class TrialSummary:
    """Median/min/max of a metric across repeated trials (the paper plots
    exactly these three for its three simulation runs)."""

    median: float
    minimum: float
    maximum: float


def summarize_trials(values: list[float]) -> TrialSummary:
    """Summarise one metric across trials (see also AggregateStats)."""
    stats = AggregateStats.from_values("trials", values)
    return TrialSummary(
        median=stats.median, minimum=stats.minimum, maximum=stats.maximum
    )
