"""Batch Meridian simulations matching the paper's Section 4 protocol.

The paper: "latency matrices with about 2500 peers, out of which about 2400
randomly picked peers are picked to build a Meridian overlay.  The 100
remaining peers are used as target nodes ... 5000 Meridian closest-neighbor
queries are launched to find the closest peer to randomly chosen target
nodes."  Success metrics:

* **correct closest peer** — the query returned the overlay member with the
  (true) minimum latency to the target;
* **correct cluster** — the returned member is in the same cluster as the
  target;
* for incorrect results, the **latency from the found peer to its
  cluster-hub** (Fig 9's second axis).

Each experiment point is run over several independent worlds (the paper
uses three) and summarised as median/min/max.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.latency.builder import ClusteredWorld
from repro.meridian.overlay import MeridianConfig, MeridianOverlay
from repro.meridian.query import closest_node_query
from repro.topology.oracle import LatencyOracle
from repro.util.errors import DataError
from repro.util.rng import make_rng


@dataclass(frozen=True)
class MeridianTrialResult:
    """Aggregated outcome of one batch of queries on one world."""

    n_queries: int
    correct_closest_rate: float
    correct_cluster_rate: float
    median_found_hub_latency_ms: float  # over queries that missed the closest
    mean_probes_per_query: float
    mean_hops_per_query: float


def run_meridian_trial(
    world: ClusteredWorld,
    n_targets: int = 100,
    n_queries: int = 5000,
    config: MeridianConfig | None = None,
    seed: int | np.random.Generator | None = None,
    probe_oracle: LatencyOracle | None = None,
) -> MeridianTrialResult:
    """Run one full trial (overlay build + query batch) on ``world``."""
    config = config or MeridianConfig()
    rng = make_rng(seed)
    topology = world.topology
    n = topology.n_nodes
    if n_targets >= n:
        raise DataError(f"n_targets={n_targets} must be < population {n}")

    all_ids = np.arange(n)
    targets = rng.choice(all_ids, size=n_targets, replace=False)
    target_set = set(int(t) for t in targets)
    members = np.array([i for i in all_ids if int(i) not in target_set])

    overlay = MeridianOverlay.build(world.oracle, members, config=config, seed=rng)
    oracle = probe_oracle or world.oracle
    matrix = world.matrix.values

    # Ground truth: the true closest overlay member per target.
    truth_closest: dict[int, set[int]] = {}
    for t in targets:
        row = matrix[t, members]
        best = float(row.min())
        # All members tied at the minimum count as correct (end-network
        # mates are mutually 100 us from the target).
        truth_closest[int(t)] = {
            int(members[i]) for i in np.flatnonzero(row <= best + 1e-12)
        }

    correct_closest = 0
    correct_cluster = 0
    wrong_hub_latencies: list[float] = []
    probes: list[int] = []
    hops: list[int] = []
    for _ in range(n_queries):
        target = int(rng.choice(targets))
        result = closest_node_query(overlay, oracle, target, seed=rng)
        probes.append(result.probe_count)
        hops.append(result.hops)
        if result.found in truth_closest[target]:
            correct_closest += 1
        else:
            wrong_hub_latencies.append(
                float(topology.host_hub_latency_ms[result.found])
            )
        if topology.same_cluster(result.found, target):
            correct_cluster += 1

    return MeridianTrialResult(
        n_queries=n_queries,
        correct_closest_rate=correct_closest / n_queries,
        correct_cluster_rate=correct_cluster / n_queries,
        median_found_hub_latency_ms=(
            float(np.median(wrong_hub_latencies)) if wrong_hub_latencies else 0.0
        ),
        mean_probes_per_query=float(np.mean(probes)),
        mean_hops_per_query=float(np.mean(hops)),
    )


@dataclass(frozen=True)
class TrialSummary:
    """Median/min/max of a metric across repeated trials (the paper plots
    exactly these three for its three simulation runs)."""

    median: float
    minimum: float
    maximum: float


def summarize_trials(values: list[float]) -> TrialSummary:
    """Summarise one metric across trials."""
    if not values:
        raise DataError("cannot summarise zero trials")
    arr = np.asarray(values, dtype=float)
    return TrialSummary(
        median=float(np.median(arr)),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )
