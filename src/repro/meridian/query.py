"""Meridian closest-node discovery.

The query protocol of the Meridian paper, as summarised in Section 2.3 of
the reproduction target: the node handling the query "measures its latency
to the target, and asks the nodes in its rings that it knows are at about
the same latency to itself to measure their latencies to the target.  The
query is then forwarded to the node with the minimum distance to the
target.  The query terminates when the current node can find no closer node
to the target than itself."

``beta`` plays its double role: the probe band is ``(1 ± beta) * d`` and the
query only advances to a node that improves on ``beta * d``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.meridian.overlay import MeridianOverlay
from repro.topology.oracle import LatencyOracle, batch_latency_block
from repro.util.errors import DataError
from repro.util.rng import make_rng


@dataclass
class QueryResult:
    """Outcome of one closest-node query."""

    target: int
    start: int
    found: int
    found_latency_ms: float  # measured latency from found node to target
    hops: int
    probe_count: int  # latency measurements *to the target* performed
    path: list[int] = field(default_factory=list)
    termination: str = "no_improvement"  # or "max_hops"


def closest_node_query(
    overlay: MeridianOverlay,
    probe_oracle: LatencyOracle,
    target: int,
    start: int | None = None,
    seed: int | np.random.Generator | None = None,
) -> QueryResult:
    """Run one Meridian closest-node query for ``target``.

    ``probe_oracle`` supplies the latency measurements (wrap it in a
    :class:`~repro.topology.oracle.CountingOracle` or ``NoisyOracle`` for
    probe accounting / noise studies).  ``start`` defaults to a uniformly
    random overlay member, matching the paper's "initiates a closest-peer
    query at a random peer".
    """
    rng = make_rng(seed)
    if start is None:
        start = int(rng.choice(overlay.member_ids))
    elif start not in overlay.nodes:
        raise DataError(f"start node {start} is not an overlay member")

    beta = overlay.config.beta
    probes = 0

    def probe(node_id: int) -> float:
        nonlocal probes
        probes += 1
        # Billed here through the local `probes` counter plus whatever
        # Counting/Noisy oracle the caller injected — this predates (and is
        # wrapped by) the algorithm-layer counted helpers.
        return probe_oracle.latency_ms(node_id, target)  # repro-lint: allow(counted-probes)

    current = start
    current_d = probe(current)
    best, best_d = current, current_d
    measured: dict[int, float] = {current: current_d}
    path = [current]
    termination = "no_improvement"

    for _hop in range(overlay.config.max_hops):
        node = overlay.node(current)
        low = (1.0 - beta) * current_d
        high = (1.0 + beta) * current_d
        candidates = node.members_within(low, high)
        # The ring sweep is one batched measurement: every candidate's
        # latency to the target in a single latency_block call (member ->
        # target, the same direction as the scalar probe).
        fresh = list(
            dict.fromkeys(
                m for m in candidates if m != target and m not in measured
            )
        )
        if fresh:
            probes += len(fresh)  # the ring sweep is billed before it fires
            values = batch_latency_block(probe_oracle, fresh, [target])[:, 0]  # repro-lint: allow(counted-probes)
            measured.update(zip(fresh, values.tolist()))
        if measured:
            round_best = min(measured, key=measured.get)
            if measured[round_best] < best_d:
                best, best_d = round_best, measured[round_best]
        # Forward only on a beta-fraction improvement; otherwise finish.
        if best_d <= beta * current_d and best != current:
            current, current_d = best, best_d
            path.append(current)
            continue
        break
    else:
        termination = "max_hops"

    return QueryResult(
        target=target,
        start=start,
        found=best,
        found_latency_ms=best_d,
        hops=len(path) - 1,
        probe_count=probes,
        path=path,
        termination=termination,
    )
