"""Synthetic stand-ins for the paper's external datasets.

The paper consumes two third-party datasets we cannot access offline:

* ~22,000 recursive DNS servers (Ballani et al., IMC 2006) — Section 3.1;
* 156,658 Azureus client IPs (Ledlie et al., NSDI 2007) — Section 3.2.

Both become *populations inside the synthetic Internet*; this module holds
the Internet configurations sized for each study (scaled down by default so
the harness runs on a laptop, with ``paper_scale=True`` restoring the
original orders of magnitude) plus convenience accessors.
"""

from __future__ import annotations

from repro.topology.internet import InternetConfig, SyntheticInternet


def dns_study_internet_config(paper_scale: bool = False) -> InternetConfig:
    """An Internet sized for the Section 3.1 DNS study.

    DNS servers appear in campus networks; the default yields a few
    thousand servers (the paper had ~22k).
    """
    if paper_scale:
        return InternetConfig(
            n_isps=12,
            pops_per_isp_low=8,
            pops_per_isp_high=16,
            en_per_pop_low=40,
            en_per_pop_high=220,
            home_en_fraction=0.35,
            dns_probability_campus=0.75,
            max_dns_per_en=3,
        )
    return InternetConfig(
        n_isps=8,
        pops_per_isp_low=4,
        pops_per_isp_high=9,
        en_per_pop_low=16,
        en_per_pop_high=80,
        home_en_fraction=0.4,
        dns_probability_campus=0.7,
        max_dns_per_en=2,
    )


def azureus_study_internet_config(paper_scale: bool = False) -> InternetConfig:
    """An Internet sized for the Section 3.2 Azureus study.

    Peers are mostly home users funnelled through shared aggregation; the
    big clusters of Fig 6/7 come from PoPs with dense home populations.
    """
    if paper_scale:
        return InternetConfig(
            n_isps=12,
            pops_per_isp_low=6,
            pops_per_isp_high=14,
            en_per_pop_low=150,
            en_per_pop_high=1600,
            home_en_fraction=0.78,
            agg_depth_weights=(0.12, 0.66, 0.22),
            end_networks_per_l1_agg=260,
            tcp_response_rate=0.35,
        )
    # Home lines funnel into a few fat aggregation routers per PoP (the
    # BRAS/DSLAM concentrators behind the paper's 100+-peer clusters).
    # A few dominant consumer ISPs, as in the 2008 Azureus population.
    return InternetConfig(
        n_isps=4,
        pops_per_isp_low=5,
        pops_per_isp_high=12,
        en_per_pop_low=80,
        en_per_pop_high=1100,
        home_en_fraction=0.75,
        agg_depth_weights=(0.15, 0.65, 0.2),
        end_networks_per_l1_agg=450,
        tcp_response_rate=0.45,
    )


def generate_dns_server_population(
    seed: int = 0, paper_scale: bool = False
) -> SyntheticInternet:
    """A ready Internet whose DNS servers stand in for the Ballani set."""
    return SyntheticInternet.generate(
        dns_study_internet_config(paper_scale), seed=seed
    )


def generate_azureus_population(
    seed: int = 0, paper_scale: bool = False
) -> SyntheticInternet:
    """A ready Internet whose peers stand in for the Ledlie Azureus set."""
    return SyntheticInternet.generate(
        azureus_study_internet_config(paper_scale), seed=seed
    )
