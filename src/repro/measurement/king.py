"""Simulated King technique (Gummadi et al., SIGCOMM 2002).

King estimates the latency between two *recursive* DNS servers by issuing,
from a measurement host, (1) a direct query to server A and (2) a recursive
query through A for a name that B is authoritative for, then subtracting.

The simulation reproduces King's observable error structure, which drives
the shape of the paper's Figures 3 and 4:

* **server lag**: "at low latencies, the lag involved at the DNS servers
  executing the King measurements is likely to constitute a non-negligible
  part of the measured latency" — each server adds an exponential
  processing delay, inflating short measurements;
* **alternate paths**: "at large latencies, it gets more likely that there
  are alternate paths between the DNS servers that do not traverse the
  common upstream router" — with probability growing in the true latency,
  the measured RTT is discounted below the tree-routed prediction (DNS
  servers are well connected, so this is common for them);
* **same-domain failure**: servers sharing a domain are likely authoritative
  for the same names, so the recursive query is answered locally and King
  is unusable — :meth:`KingEstimator.measure` returns ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.topology.internet import SyntheticInternet
from repro.util.rng import make_rng
from repro.util.validate import require_in_range, require_non_negative


@dataclass(frozen=True)
class KingConfig:
    """Noise/error parameters of the King simulation."""

    server_lag_scale_ms: float = 1.2
    noise_sigma: float = 0.45
    # P(alternate path) = min(cap, base + slope * true_latency_ms)
    alternate_path_base: float = 0.15
    alternate_path_slope_per_ms: float = 0.01
    alternate_path_cap: float = 0.8
    alternate_discount_low: float = 0.3
    alternate_discount_high: float = 0.9

    def __post_init__(self) -> None:
        require_non_negative(self.server_lag_scale_ms, "server_lag_scale_ms")
        require_in_range(self.alternate_path_cap, "alternate_path_cap", 0.0, 1.0)


class KingEstimator:
    """Latency estimation between recursive DNS servers via King."""

    def __init__(
        self,
        internet: SyntheticInternet,
        config: KingConfig | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self._internet = internet
        self._config = config or KingConfig()
        self._rng = make_rng(seed)

    def usable(self, server_a: int, server_b: int) -> bool:
        """King works only across different domains (see module docstring)."""
        rec_a = self._internet.host(server_a)
        rec_b = self._internet.host(server_b)
        if rec_a.domain is None or rec_b.domain is None:
            return False
        return rec_a.domain != rec_b.domain

    def measure(
        self, server_a: int, server_b: int, true_ms: float | None = None
    ) -> float | None:
        """King's estimate of the RTT between two DNS servers, or ``None``.

        ``true_ms`` lets bulk pipelines supply the true RTT from one
        precomputed latency block instead of routing per call; noise draws
        are unaffected, so results are bit-identical either way.
        """
        if not self.usable(server_a, server_b):
            return None
        cfg = self._config
        rng = self._rng
        true = (
            float(true_ms)
            if true_ms is not None
            else self._internet.latency_ms(server_a, server_b)
        )
        # Alternate (non-tree) path between well-connected servers.
        p_alternate = min(
            cfg.alternate_path_cap,
            cfg.alternate_path_base + cfg.alternate_path_slope_per_ms * true,
        )
        effective = true
        if rng.random() < p_alternate:
            effective = true * float(
                rng.uniform(cfg.alternate_discount_low, cfg.alternate_discount_high)
            )
        # Recursive-query processing lag at both servers.
        lag = float(rng.exponential(cfg.server_lag_scale_ms)) + float(
            rng.exponential(cfg.server_lag_scale_ms)
        )
        measured = effective + lag
        measured *= float(np.exp(rng.normal(0.0, cfg.noise_sigma)))
        return measured
