"""Record types shared by the Section 3 measurement pipelines."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TracerouteHop:
    """One hop of a (rocket)traceroute.

    ``router_id`` is ``None`` when the router did not respond (the ``* * *``
    line of a real traceroute).  ``as_name``/``city`` are the annotations
    rockettrace derives from the router's DNS name — they reflect the *name*,
    which is occasionally misconfigured, not ground truth.
    """

    position: int
    router_id: int | None
    dns_name: str | None
    as_name: str | None
    city: str | None
    rtt_ms: float | None

    @property
    def responded(self) -> bool:
        return self.router_id is not None

    @property
    def annotated(self) -> bool:
        """True when rockettrace could infer an (AS, city) annotation."""
        return self.as_name is not None and self.city is not None


@dataclass(frozen=True)
class TracerouteResult:
    """A full trace from a source host toward a destination host."""

    src_host: int
    dst_host: int
    hops: tuple[TracerouteHop, ...]
    destination_responded: bool
    destination_rtt_ms: float | None

    def valid_hops(self) -> list[TracerouteHop]:
        """Hops whose router responded."""
        return [h for h in self.hops if h.responded]

    def last_valid_router(self) -> int | None:
        """The closest upstream router of the destination.

        Per the paper: "the last router seen on the trace ... if none of the
        entries in the penultimate hop are valid, we go up to the next
        hop(s)".
        """
        for hop in reversed(self.hops):
            if hop.responded:
                return hop.router_id
        return None

    def annotation_groups(self) -> list[tuple[tuple[str, str], list[TracerouteHop]]]:
        """Consecutive runs of hops sharing an (AS, city) annotation.

        rockettrace's PoP heuristic: "routers annotated with the same AS and
        city reside in the same ISP PoP".
        """
        groups: list[tuple[tuple[str, str], list[TracerouteHop]]] = []
        for hop in self.hops:
            if not hop.annotated:
                continue
            key = (hop.as_name, hop.city)
            if groups and groups[-1][0] == key:
                groups[-1][1].append(hop)
            else:
                groups.append((key, [hop]))
        return groups

    def closest_upstream_pop(self) -> tuple[tuple[str, str], TracerouteHop] | None:
        """The (AS, city) PoP nearest upstream of the destination.

        Returns the PoP's annotation key and the hop of the PoP router
        nearest the destination, or ``None`` when no annotated hop exists.
        """
        groups = self.annotation_groups()
        if not groups:
            return None
        key, hops = groups[-1]
        return key, hops[-1]

    def hops_between(self, router_id: int) -> int | None:
        """Hop count between the destination and a router on this trace."""
        for index_from_end, hop in enumerate(reversed(self.hops)):
            if hop.router_id == router_id:
                return index_from_end + 1
        return None


@dataclass(frozen=True)
class DnsPairMeasurement:
    """Predicted vs King-measured latency for one DNS-server pair (Sec 3.1)."""

    server_a: int
    server_b: int
    predicted_ms: float
    measured_ms: float | None
    common_router_id: int | None  # the router prediction turned around at
    shared_below_pop: bool  # True when the common router is below the PoP
    hops_a: int | None  # server-a hops to the common router / PoP
    hops_b: int | None
    same_domain: bool

    @property
    def prediction_measure(self) -> float | None:
        """The paper's metric: predicted / measured latency."""
        if self.measured_ms is None or self.measured_ms <= 0:
            return None
        return self.predicted_ms / self.measured_ms


@dataclass
class ClusterOfPeers:
    """A cluster identified by the Section 3.2 pipeline.

    ``hub_router_id`` is the common upstream router (the cluster-hub);
    ``hub_latency_ms`` maps each member peer to its measured latency from
    the hub.
    """

    hub_router_id: int
    peer_ids: list[int] = field(default_factory=list)
    hub_latency_ms: dict[int, float] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.peer_ids)

    def latencies(self) -> list[float]:
        """Hub-to-peer latencies in peer order."""
        return [self.hub_latency_ms[p] for p in self.peer_ids]
