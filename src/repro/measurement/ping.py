"""Simulated ``ping``: RTT measurement to hosts and routers.

The Section 3.1 pipeline "get[s] these latter latencies using the ping
tool": it pings DNS servers and routers from the measurement host and
subtracts.  Pings to routers need router-level routing — the target may sit
in the middle of some end-network's attachment chain — which
:meth:`Pinger.ping_router` resolves through the topology's router anchors.

Noise model: ping reports the minimum of a few probes, so the error is
dominated by residual queueing delay — small, one-sided, and (crucially)
*independent of path length*: subtracting two pings that share most of
their path leaves only the additive error, which is what makes the paper's
leg computation (ping to server minus ping to router) meaningful even for
sub-millisecond legs at transcontinental distances.
"""

from __future__ import annotations

import numpy as np

from repro.topology.internet import SyntheticInternet
from repro.util.errors import SimulationError
from repro.util.rng import make_rng


class Pinger:
    """ICMP-like RTT probes against the synthetic Internet."""

    def __init__(
        self,
        internet: SyntheticInternet,
        seed: int | np.random.Generator | None = None,
        noise_sigma: float = 0.001,
        queueing_scale_ms: float = 0.18,
    ) -> None:
        self._internet = internet
        self._rng = make_rng(seed)
        self._noise_sigma = noise_sigma
        self._queueing_scale_ms = queueing_scale_ms

    def _noisy(self, true_rtt_ms: float) -> float:
        factor = float(np.exp(self._rng.normal(0.0, self._noise_sigma)))
        queueing = float(self._rng.exponential(self._queueing_scale_ms))
        return true_rtt_ms * factor + queueing

    def ping_host(
        self, src_host: int, dst_host: int, true_ms: float | None = None
    ) -> float | None:
        """RTT to a host, or ``None`` when the host drops ICMP.

        ``true_ms`` lets bulk pipelines supply the true RTT from one
        precomputed :meth:`~repro.topology.graph.RouterLevelTopology.latency_matrix`
        block instead of routing per call; noise draws are unaffected, so
        results are bit-identical either way.
        """
        record = self._internet.host(dst_host)
        if not record.responds_to_traceroute:
            return None
        if true_ms is None:
            true_ms = self._internet.latency_ms(src_host, dst_host)
        return self._noisy(true_ms)

    def true_latency_to_router(self, src_host: int, router_id: int) -> float | None:
        """Noise-free RTT from a host to a router (``None`` if unreachable)."""
        internet = self._internet
        for chain_router, cum in internet.upward_chain(src_host):
            if chain_router == router_id:
                return cum
        anchor = internet.router_anchor(router_id)
        if anchor is None:
            return None
        anchor_router, below_ms = anchor
        src_pop_router, src_cum = internet.upward_chain(src_host)[-1]
        if anchor_router == src_pop_router:
            return src_cum + below_ms
        if src_pop_router not in internet.core_graph:
            # A source whose own PoP router is outside the core graph is a
            # malformed topology, not an unreachable target.
            raise SimulationError(
                f"router {src_pop_router} is not in the core graph"
            )
        core_ms = internet.core_distance_ms(src_pop_router, anchor_router)
        if core_ms is None:
            return None
        return src_cum + core_ms + below_ms

    def ping_router(self, src_host: int, router_id: int) -> float | None:
        """RTT to a router, or ``None`` when it cannot be reached/anchored."""
        true = self.true_latency_to_router(src_host, router_id)
        if true is None:
            return None
        return self._noisy(true)
