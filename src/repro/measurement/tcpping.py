"""Simulated TCP-ping.

Azureus peers "do not respond to either ping or traceroute with valid
latencies", so the paper measures "the time it takes to complete a TCP
'connect' to the [well-known] port at the peer".  Our model: a peer
responds only if its simulated client is running and reachable
(``responds_to_tcp_ping``); a successful connect measures the true RTT plus
SYN/accept processing delay and noise.
"""

from __future__ import annotations

import numpy as np

from repro.topology.internet import SyntheticInternet
from repro.util.rng import make_rng

#: The well-known Azureus port the paper probes.
AZUREUS_PORT = 6881


class TcpPinger:
    """TCP-connect RTT probes against the synthetic Internet."""

    def __init__(
        self,
        internet: SyntheticInternet,
        seed: int | np.random.Generator | None = None,
        syn_processing_scale_ms: float = 0.35,
        noise_sigma: float = 0.04,
    ) -> None:
        self._internet = internet
        self._rng = make_rng(seed)
        self._syn_processing_scale_ms = syn_processing_scale_ms
        self._noise_sigma = noise_sigma

    def measure(
        self, src_host: int, dst_host: int, true_ms: float | None = None
    ) -> float | None:
        """TCP-connect RTT, or ``None`` when the peer is not reachable.

        ``true_ms`` lets bulk pipelines supply the true RTT from one
        precomputed latency block instead of routing per call; noise draws
        are unaffected, so results are bit-identical either way.
        """
        record = self._internet.host(dst_host)
        if not record.responds_to_tcp_ping:
            return None
        if true_ms is None:
            true_ms = self._internet.latency_ms(src_host, dst_host)
        processing = float(self._rng.exponential(self._syn_processing_scale_ms))
        factor = float(np.exp(self._rng.normal(0.0, self._noise_sigma)))
        return float(true_ms) * factor + processing
