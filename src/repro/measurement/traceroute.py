"""Simulated rockettrace (annotated traceroute).

rockettrace "reports the names and IP addresses of routers on the way to
the destination [and] annotates router names with the router's owning AS
and city".  Our simulation reproduces its observable behaviour and error
sources:

* per-hop RTTs carry ping-like noise;
* routers silently drop probes with some probability (``* * *`` hops);
* campus-internal routers (end-network gateways and switches) produce
  *unannotated* hops — their names do not follow ISP conventions, so the
  AS/city inference fails;
* ISP router names are occasionally misconfigured (wrong city), which the
  generator bakes into the router records themselves, exactly as the paper
  cautions: "if the name is mis-configured, this leads to erroneous
  results".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.measurement.pipeline_types import TracerouteHop, TracerouteResult
from repro.topology.elements import RouterKind
from repro.topology.internet import SyntheticInternet
from repro.util.rng import make_rng
from repro.util.validate import require_in_range


@dataclass(frozen=True)
class TracerouteConfig:
    """Behavioural knobs of the traceroute simulation."""

    router_response_rate: float = 0.92
    rtt_noise_sigma: float = 0.03
    queueing_scale_ms: float = 0.1

    def __post_init__(self) -> None:
        require_in_range(self.router_response_rate, "router_response_rate", 0.0, 1.0)


class Rockettrace:
    """Annotated traceroute against the synthetic Internet."""

    def __init__(
        self,
        internet: SyntheticInternet,
        config: TracerouteConfig | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self._internet = internet
        self._config = config or TracerouteConfig()
        self._rng = make_rng(seed)

    def _noisy(self, rtt_ms: float) -> float:
        factor = float(np.exp(self._rng.normal(0.0, self._config.rtt_noise_sigma)))
        return rtt_ms * factor + float(self._rng.exponential(self._config.queueing_scale_ms))

    def trace(
        self, src_host: int, dst_host: int, route=None
    ) -> TracerouteResult:
        """Run one traceroute; hop annotations follow router *names*.

        ``route`` optionally supplies the precomputed
        :class:`~repro.topology.graph.Route` (see :meth:`trace_many`);
        the noise draws are untouched, so a trace over a precomputed
        route is bit-identical to one that routes on the fly.
        """
        internet = self._internet
        if route is None:
            route = internet.route(src_host, dst_host)
        hops: list[TracerouteHop] = []
        for position, (router_id, cum_ms) in enumerate(
            zip(route.routers, route.cumulative_ms)
        ):
            if self._rng.random() >= self._config.router_response_rate:
                hops.append(
                    TracerouteHop(
                        position=position,
                        router_id=None,
                        dns_name=None,
                        as_name=None,
                        city=None,
                        rtt_ms=None,
                    )
                )
                continue
            record = internet.router(router_id)
            # Campus-internal routers have no ISP naming convention, so the
            # AS/city annotation fails for them.
            annotatable = record.kind != RouterKind.EDGE
            hops.append(
                TracerouteHop(
                    position=position,
                    router_id=router_id,
                    dns_name=record.dns_name,
                    as_name=record.as_name if annotatable else None,
                    city=record.city if annotatable else None,
                    rtt_ms=self._noisy(cum_ms),
                )
            )
        dst_record = internet.host(dst_host)
        responded = dst_record.responds_to_traceroute
        return TracerouteResult(
            src_host=src_host,
            dst_host=dst_host,
            hops=tuple(hops),
            destination_responded=responded,
            destination_rtt_ms=self._noisy(route.latency_ms) if responded else None,
        )

    def trace_many(
        self, src_host: int, dst_hosts: "list[int] | np.ndarray"
    ) -> list[TracerouteResult]:
        """Traceroutes from one vantage to many destinations, batched.

        Route construction goes through the topology's
        :meth:`~repro.topology.graph.RouterLevelTopology.routes_from`
        fast path (shared upward-chain prefix, core segments cached per
        destination PoP), while the per-hop noise draws replay the scalar
        :meth:`trace` loop in destination order — results are
        bit-identical to tracing each destination individually.
        """
        routes = self._internet.routes_from(int(src_host), dst_hosts)
        return [
            self.trace(int(src_host), int(dst), route=route)
            for dst, route in zip(dst_hosts, routes)
        ]


def last_common_router(
    trace_a: TracerouteResult, trace_b: TracerouteResult
) -> int | None:
    """Deepest router shared by two traces from the same source.

    Scanning forward from the (shared) source, the traces follow a common
    prefix and then diverge; the last common router is where a message
    between the two destinations would turn around, per the paper's
    prediction model.  Non-responding hops are skipped.
    """
    if trace_a.src_host != trace_b.src_host:
        return None
    routers_b = {h.router_id for h in trace_b.hops if h.responded}
    last = None
    for hop in trace_a.hops:
        if hop.responded and hop.router_id in routers_b:
            last = hop.router_id
    return last
