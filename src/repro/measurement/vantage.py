"""The measurement vantage points of the paper's Table 1.

Seven PlanetLab hosts spread across three continents; the paper argues this
spread ensures a peer's common upstream router (as seen from *all* vantage
points) really is on the path between cluster peers.  We place synthetic
vantage hosts at the same cities.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class VantagePoint:
    """One row of Table 1."""

    hostname: str
    location: str
    city: str  # the matching repro.topology.cities entry


#: Table 1 of the paper, verbatim hostnames/locations, mapped to built-in cities.
TABLE1_VANTAGE_POINTS: tuple[VantagePoint, ...] = (
    VantagePoint("planetlab02.cs.washington.edu", "Washington, USA", "Seattle"),
    VantagePoint("planetlab3.ucsd.edu", "California, USA", "San Diego"),
    VantagePoint("planetlab5.cs.cornell.edu", "New York, USA", "Ithaca"),
    VantagePoint("planetlab2.acis.ufl.edu", "Florida, USA", "Gainesville"),
    VantagePoint("neu1.6planetlab.edu.cn", "Shenyang, China", "Shenyang"),
    VantagePoint("planetlab2.iii.u-tokyo.ac.jp", "Tokyo, Japan", "Tokyo"),
    VantagePoint("planetlab2.xeno.cl.cam.ac.uk", "Cambridge, England", "Cambridge UK"),
)

#: Just the city names, in Table 1 order (what the generator consumes).
TABLE1_VANTAGE_CITIES: tuple[str, ...] = tuple(
    vp.city for vp in TABLE1_VANTAGE_POINTS
)


def table1_rows() -> list[list[str]]:
    """Rows for rendering Table 1 (vantage point, location)."""
    return [[vp.hostname, vp.location] for vp in TABLE1_VANTAGE_POINTS]
