"""Simulated re-creation of the paper's Section 3 measurement methodology.

The paper's measurements ran over the live Internet: rockettrace from a
measurement host, the King technique between recursive DNS servers, and
TCP pings to Azureus peers from seven PlanetLab vantage points.  This
package reimplements each tool against the synthetic Internet of
:mod:`repro.topology.internet`, with the error sources the paper discusses
(DNS server lag, alternate paths, misnamed routers, unresponsive hosts)
modelled explicitly, and then reproduces both measurement pipelines:

* :mod:`repro.measurement.dns_pipeline` — Section 3.1 (Figures 3, 4, 5);
* :mod:`repro.measurement.azureus_pipeline` — Section 3.2 (Figures 6, 7).
"""

from repro.measurement.king import KingConfig, KingEstimator
from repro.measurement.ping import Pinger
from repro.measurement.pipeline_types import (
    ClusterOfPeers,
    DnsPairMeasurement,
    TracerouteHop,
    TracerouteResult,
)
from repro.measurement.tcpping import TcpPinger
from repro.measurement.traceroute import Rockettrace, TracerouteConfig, last_common_router
from repro.measurement.vantage import (
    TABLE1_VANTAGE_CITIES,
    TABLE1_VANTAGE_POINTS,
    VantagePoint,
)

__all__ = [
    "KingConfig",
    "KingEstimator",
    "Pinger",
    "TcpPinger",
    "Rockettrace",
    "TracerouteConfig",
    "last_common_router",
    "TracerouteHop",
    "TracerouteResult",
    "DnsPairMeasurement",
    "ClusterOfPeers",
    "VantagePoint",
    "TABLE1_VANTAGE_CITIES",
    "TABLE1_VANTAGE_POINTS",
]
