"""Section 3.2: clustering measurement over Azureus peers (Figures 6, 7).

Pipeline, as in the paper:

1. traceroute to every peer from all vantage points (Table 1); a peer's
   closest upstream router is the last valid router on the trace;
2. retain peers that answered a TCP ping (port 6881 'connect' timing) or a
   traceroute AND whose upstream router agrees across all vantage points;
3. group the survivors into clusters by upstream router (the cluster-hub);
4. hub→peer latency = TCP-ping latency minus the hub's traceroute entry,
   medianed over vantage points, negatives discarded;
5. prune each cluster to the largest subset whose hub latencies are within
   a factor of 1.5 of one another.

Figure 6 is the cumulative count of peers by (un)pruned cluster size;
Figure 7 the hub-latency distributions of the five largest pruned clusters.
The headline statistic: "about 16 % of the peers are in (pruned) clusters
of size 25 or larger".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.measurement.pipeline_types import ClusterOfPeers
from repro.measurement.tcpping import TcpPinger
from repro.measurement.traceroute import Rockettrace
from repro.topology.internet import SyntheticInternet
from repro.util.errors import DataError
from repro.util.rng import make_rng
from repro.util.validate import require_positive


@dataclass(frozen=True)
class AzureusStudyConfig:
    """Knobs of the Section 3.2 pipeline."""

    prune_factor: float = 1.5
    min_cluster_size: int = 2
    large_cluster_threshold: int = 25  # the paper's "size 25 or larger"
    # The study retries silent hops ("if none of the entries in the
    # penultimate hop are valid, we go up"), so its effective per-router
    # response rate beats a single traceroute's.
    router_response_rate: float = 0.96
    #: Precompute the vantage->peer true RTTs as one bulk ``latency_matrix``
    #: block instead of routing per TCP ping.  Noise draws are untouched,
    #: so results are bit-identical with the flag on or off; ``False``
    #: exists for the perf benchmarks.
    batch_true_latencies: bool = True
    #: Precompute each vantage's traceroute routes in one ``routes_from``
    #: sweep (shared upward-chain prefix, per-PoP core segments) instead
    #: of routing per trace.  Route construction consumes no randomness,
    #: so results are bit-identical on or off; ``False`` exists for the
    #: perf benchmarks.
    batch_routes: bool = True

    def __post_init__(self) -> None:
        require_positive(self.prune_factor - 1.0, "prune_factor - 1")


@dataclass
class AzureusStudyResult:
    """Everything Figures 6-7 need."""

    peers_total: int = 0
    peers_responsive: int = 0
    peers_retained: int = 0  # responsive AND consistent upstream router
    unpruned_clusters: list[ClusterOfPeers] = field(default_factory=list)
    pruned_clusters: list[ClusterOfPeers] = field(default_factory=list)

    def cluster_sizes(self, pruned: bool) -> list[int]:
        clusters = self.pruned_clusters if pruned else self.unpruned_clusters
        return sorted((c.size for c in clusters), reverse=True)

    def cumulative_peer_count_by_size(self, pruned: bool) -> list[tuple[int, int]]:
        """Fig 6: (cluster size, cumulative peers in clusters <= size)."""
        sizes = sorted(self.cluster_sizes(pruned))
        points: list[tuple[int, int]] = []
        running = 0
        for size in sizes:
            running += size
            points.append((size, running))
        return points

    def fraction_in_large_clusters(self, threshold: int = 25) -> float:
        """The paper's 16 %: peers in pruned clusters >= ``threshold``."""
        total = sum(c.size for c in self.pruned_clusters)
        if total == 0:
            raise DataError("no pruned clusters")
        large = sum(c.size for c in self.pruned_clusters if c.size >= threshold)
        return large / total

    def top_clusters(self, count: int = 5) -> list[ClusterOfPeers]:
        """Fig 7's subjects: the largest pruned clusters."""
        return sorted(self.pruned_clusters, key=lambda c: c.size, reverse=True)[
            :count
        ]


def _largest_within_factor(latencies: np.ndarray, factor: float) -> np.ndarray:
    """Indices of the largest subset with max/min <= factor (sliding window)."""
    order = np.argsort(latencies)
    sorted_lat = latencies[order]
    best_lo, best_hi = 0, 1
    lo = 0
    for hi in range(1, latencies.size + 1):
        while sorted_lat[hi - 1] > factor * sorted_lat[lo]:
            lo += 1
        if hi - lo > best_hi - best_lo:
            best_lo, best_hi = lo, hi
    return order[best_lo:best_hi]


class AzureusStudy:
    """Runs the Section 3.2 pipeline against a synthetic Internet."""

    def __init__(
        self,
        internet: SyntheticInternet,
        config: AzureusStudyConfig | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if not internet.vantage_ids:
            raise DataError("the internet has no vantage points")
        self._internet = internet
        self._config = config or AzureusStudyConfig()
        self._rng = make_rng(seed)
        from repro.measurement.traceroute import TracerouteConfig

        self._tracer = Rockettrace(
            internet,
            config=TracerouteConfig(
                router_response_rate=self._config.router_response_rate
            ),
            seed=self._rng,
        )
        self._tcp = TcpPinger(internet, seed=self._rng)

    def run(self) -> AzureusStudyResult:
        internet = self._internet
        cfg = self._config
        result = AzureusStudyResult(peers_total=len(internet.peer_ids))

        # Stage 1+2: responsiveness and upstream-router consistency.
        responsive_peers = [
            peer
            for peer in internet.peer_ids
            if internet.host(peer).responds_to_tcp_ping
            or internet.host(peer).responds_to_traceroute
        ]
        result.peers_responsive = len(responsive_peers)
        # Bulk true RTTs for the vantage->peer TCP pings (one block instead
        # of one route() per ping; no RNG consumed, results identical).
        true_block: np.ndarray | None = None
        peer_column: dict[int, int] = {}
        vantage_row: dict[int, int] = {}
        if cfg.batch_true_latencies and responsive_peers:
            true_block = internet.latency_matrix(
                internet.vantage_ids, responsive_peers
            )
            vantage_row = {v: i for i, v in enumerate(internet.vantage_ids)}
            peer_column = {p: j for j, p in enumerate(responsive_peers)}
        # Batched route construction: one routes_from sweep per vantage
        # replaces a route() per (vantage, peer) trace — the pipeline's
        # dominant cost.  The traces' noise draws are untouched.
        route_to_peer: dict[int, dict[int, object]] = {}
        if cfg.batch_routes and responsive_peers:
            route_to_peer = {
                vantage: dict(
                    zip(
                        responsive_peers,
                        internet.routes_from(vantage, responsive_peers),
                    )
                )
                for vantage in internet.vantage_ids
            }
        hub_of_peer: dict[int, int] = {}
        hub_latency: dict[int, float] = {}
        for peer in responsive_peers:
            upstream_seen: set[int] = set()
            estimates: list[float] = []
            usable = True
            for vantage in internet.vantage_ids:
                trace = self._tracer.trace(
                    vantage,
                    peer,
                    route=(
                        route_to_peer[vantage][peer] if route_to_peer else None
                    ),
                )
                last = trace.last_valid_router()
                if last is None:
                    usable = False
                    break
                upstream_seen.add(last)
                if len(upstream_seen) > 1:
                    usable = False
                    break
                # Hub->peer latency: TCP ping minus the hub's trace entry.
                tcp = self._tcp.measure(
                    vantage,
                    peer,
                    true_ms=(
                        float(true_block[vantage_row[vantage], peer_column[peer]])
                        if true_block is not None
                        else None
                    ),
                )
                hub_hop = next(
                    (h for h in reversed(trace.hops) if h.router_id == last), None
                )
                if tcp is not None and hub_hop is not None and hub_hop.rtt_ms is not None:
                    estimate = tcp - hub_hop.rtt_ms
                    if estimate > 0:
                        estimates.append(estimate)
            if not usable or not upstream_seen or not estimates:
                continue
            hub_of_peer[peer] = next(iter(upstream_seen))
            hub_latency[peer] = float(np.median(estimates))
        result.peers_retained = len(hub_of_peer)

        # Stage 3: clusters by shared upstream router.
        by_hub: dict[int, list[int]] = {}
        for peer, hub in hub_of_peer.items():
            by_hub.setdefault(hub, []).append(peer)
        for hub, peers in by_hub.items():
            if len(peers) < cfg.min_cluster_size:
                continue
            cluster = ClusterOfPeers(
                hub_router_id=hub,
                peer_ids=list(peers),
                hub_latency_ms={p: hub_latency[p] for p in peers},
            )
            result.unpruned_clusters.append(cluster)

            # Stage 5: prune to hub latencies within the 1.5x factor.
            latencies = np.array([hub_latency[p] for p in peers])
            keep = _largest_within_factor(latencies, cfg.prune_factor)
            if keep.size >= cfg.min_cluster_size:
                kept_peers = [peers[int(i)] for i in keep]
                result.pruned_clusters.append(
                    ClusterOfPeers(
                        hub_router_id=hub,
                        peer_ids=kept_peers,
                        hub_latency_ms={p: hub_latency[p] for p in kept_peers},
                    )
                )
        return result
