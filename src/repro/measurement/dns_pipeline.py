"""Section 3.1: DNS-server latency prediction study (Figures 3, 4, 5).

Pipeline, exactly as the paper runs it:

1. rockettrace from the single measurement host to every recursive DNS
   server; map each server to its closest upstream PoP (same-AS+city hop
   group nearest the destination).
2. Randomly pair servers within each PoP cluster so each server appears in
   about ``pairs_per_server`` pairs.
3. For each pair, find the last common router of the two traces.  If it is
   below the PoP the message turns around there (case i), else at the PoP
   (case ii); either way the predicted latency is the sum of the two
   ping-derived server→router latencies (ping to server minus ping to
   router, negatives discarded).
4. Measure the same pairs with King (different-domain pairs only).
5. Filters: drop pairs > ``max_hops_from_common`` hops from the common
   router, and pairs with predicted latency > ``max_predicted_ms``.

Figure 3 is the CDF of predicted/measured; Figure 4 bins that ratio by
predicted latency; Figure 5 compares intra-domain predicted latencies
(hop-limited at 5 and 10) against inter-domain predicted and King-measured
latencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.binning import BinnedPercentiles, binned_percentiles, log_bins
from repro.analysis.cdf import EmpiricalCdf
from repro.measurement.king import KingEstimator
from repro.measurement.ping import Pinger
from repro.measurement.pipeline_types import DnsPairMeasurement, TracerouteResult
from repro.measurement.traceroute import Rockettrace, last_common_router
from repro.topology.elements import RouterKind
from repro.topology.internet import SyntheticInternet
from repro.util.errors import DataError
from repro.util.rng import make_rng
from repro.util.validate import require_positive


@dataclass(frozen=True)
class DnsStudyConfig:
    """Knobs of the Section 3.1 pipeline (paper values as defaults)."""

    pairs_per_server: int = 4
    max_hops_from_common: int = 10
    intra_domain_strict_hops: int = 5
    max_predicted_ms: float = 100.0
    #: Precompute the true RTTs the study's pings and King measurements
    #: need as bulk ``latency_matrix`` blocks instead of routing host pairs
    #: one by one.  Noise draws are untouched, so results are bit-identical
    #: with the flag on or off; ``False`` exists for the perf benchmarks
    #: (and as a paranoia switch).
    batch_true_latencies: bool = True

    def __post_init__(self) -> None:
        require_positive(self.pairs_per_server, "pairs_per_server")


@dataclass
class DnsStudyResult:
    """Everything Figures 3-5 need."""

    measurements: list[DnsPairMeasurement] = field(default_factory=list)
    intra_domain_predicted_5: list[float] = field(default_factory=list)
    intra_domain_predicted_10: list[float] = field(default_factory=list)
    inter_domain_predicted_10: list[float] = field(default_factory=list)
    inter_domain_measured_10: list[float] = field(default_factory=list)
    servers_traced: int = 0
    clusters_found: int = 0
    pairs_discarded_negative: int = 0
    pairs_discarded_hops: int = 0
    pairs_discarded_far: int = 0

    def prediction_measures(self) -> np.ndarray:
        """The Fig 3 sample: predicted/measured for valid pairs."""
        return np.array(
            [
                m.prediction_measure
                for m in self.measurements
                if m.prediction_measure is not None
            ]
        )

    def fraction_within(self, low: float = 0.5, high: float = 2.0) -> float:
        """The paper's headline: ~65 % of pairs within [0.5, 2]."""
        values = self.prediction_measures()
        if values.size == 0:
            raise DataError("no valid pairs measured")
        return EmpiricalCdf.from_values(values).fraction_in_range(low, high)

    def fig4_bins(self) -> BinnedPercentiles:
        """Prediction measure binned by predicted latency."""
        valid = [m for m in self.measurements if m.prediction_measure is not None]
        predicted = [m.predicted_ms for m in valid]
        measure = [m.prediction_measure for m in valid]
        edges = log_bins(max(min(predicted), 0.2), max(predicted) + 1e-9, 4)
        return binned_percentiles(predicted, measure, edges, min_count=8)


class DnsStudy:
    """Runs the Section 3.1 pipeline against a synthetic Internet."""

    def __init__(
        self,
        internet: SyntheticInternet,
        config: DnsStudyConfig | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if internet.measurement_host_id is None:
            raise DataError("the internet has no measurement host")
        self._internet = internet
        self._config = config or DnsStudyConfig()
        self._rng = make_rng(seed)
        self._tracer = Rockettrace(internet, seed=self._rng)
        self._pinger = Pinger(internet, seed=self._rng)
        self._king = KingEstimator(internet, seed=self._rng)
        self._ping_cache: dict[tuple[str, int], float | None] = {}
        # Bulk true-latency blocks (see DnsStudyConfig.batch_true_latencies):
        # measurement-host->server RTTs and per-pair server RTTs, filled by
        # run() before the measurement loops.
        self._host_true: dict[int, float] = {}
        self._pair_true: dict[tuple[int, int], float] = {}

    # -- cached pings (the study reuses many measurements) -------------------

    def _ping_host(self, host: int) -> float | None:
        key = ("h", host)
        if key not in self._ping_cache:
            self._ping_cache[key] = self._pinger.ping_host(
                self._internet.measurement_host_id,
                host,
                true_ms=self._host_true.get(host),
            )
        return self._ping_cache[key]

    def _ping_router(self, router: int) -> float | None:
        key = ("r", router)
        if key not in self._ping_cache:
            self._ping_cache[key] = self._pinger.ping_router(
                self._internet.measurement_host_id, router
            )
        return self._ping_cache[key]

    # -- pipeline stages -------------------------------------------------------

    def _trace_all(self) -> dict[int, TracerouteResult]:
        mh = self._internet.measurement_host_id
        return {
            server: self._tracer.trace(mh, server)
            for server in self._internet.dns_server_ids
        }

    def _cluster_by_pop(
        self, traces: dict[int, TracerouteResult]
    ) -> dict[tuple[str, str], list[int]]:
        clusters: dict[tuple[str, str], list[int]] = {}
        for server, trace in traces.items():
            pop = trace.closest_upstream_pop()
            if pop is None:
                continue
            clusters.setdefault(pop[0], []).append(server)
        return clusters

    def _sample_pairs(
        self, clusters: dict[tuple[str, str], list[int]]
    ) -> list[tuple[int, int]]:
        pairs: set[tuple[int, int]] = set()
        for members in clusters.values():
            if len(members) < 2:
                continue
            members = list(members)
            # One 2-D draw per cluster: numpy fills row-major, so this is
            # bit-identical to drawing pairs_per_server partners per server
            # in a nested loop (the historical code path).
            draws = self._rng.choice(
                np.asarray(members),
                size=(len(members), self._config.pairs_per_server),
            )
            for server, row in zip(members, draws):
                for other in row.tolist():
                    if other == server:
                        continue
                    pairs.add((min(server, other), max(server, other)))
        return sorted(pairs)

    def _predict_pair(
        self,
        a: int,
        b: int,
        trace_a: TracerouteResult,
        trace_b: TracerouteResult,
        result: DnsStudyResult,
    ) -> DnsPairMeasurement | None:
        cfg = self._config
        common = last_common_router(trace_a, trace_b)
        if common is None:
            return None
        hops_a = trace_a.hops_between(common)
        hops_b = trace_b.hops_between(common)
        if hops_a is None or hops_b is None:
            return None
        if max(hops_a, hops_b) > cfg.max_hops_from_common:
            result.pairs_discarded_hops += 1
            return None
        ping_a = self._ping_host(a)
        ping_b = self._ping_host(b)
        ping_common = self._ping_router(common)
        if ping_a is None or ping_b is None or ping_common is None:
            return None
        leg_a = ping_a - ping_common
        leg_b = ping_b - ping_common
        if leg_a < 0 or leg_b < 0:
            result.pairs_discarded_negative += 1
            return None
        predicted = leg_a + leg_b
        if predicted > cfg.max_predicted_ms:
            result.pairs_discarded_far += 1
            return None
        record_a = self._internet.host(a)
        record_b = self._internet.host(b)
        same_domain = (
            record_a.domain is not None and record_a.domain == record_b.domain
        )
        measured = (
            None
            if same_domain
            else self._king.measure(a, b, true_ms=self._pair_true.get((a, b)))
        )
        kind = self._internet.router(common).kind
        return DnsPairMeasurement(
            server_a=a,
            server_b=b,
            predicted_ms=predicted,
            measured_ms=measured,
            common_router_id=common,
            shared_below_pop=kind in (RouterKind.AGGREGATION, RouterKind.EDGE),
            hops_a=hops_a,
            hops_b=hops_b,
            same_domain=same_domain,
        )

    def _intra_domain_pairs(
        self, traces: dict[int, TracerouteResult]
    ) -> list[tuple[int, int]]:
        by_domain: dict[str, list[int]] = {}
        for server in traces:
            domain = self._internet.host(server).domain
            if domain is not None:
                by_domain.setdefault(domain, []).append(server)
        pairs = []
        for members in by_domain.values():
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    pairs.append((members[i], members[j]))
        return pairs

    def _precompute_true_latencies(
        self,
        pairs: list[tuple[int, int]],
        intra_pairs: list[tuple[int, int]],
    ) -> None:
        """Bulk-build every true RTT the measurement loops will ask for.

        One ``latency_matrix`` row covers the measurement-host pings, one
        ``pair_latencies`` call the King pair measurements (the sampled
        pairs are mostly same-PoP, so a dense block over their hosts would
        be almost entirely wasted work).  No RNG is consumed here, so the
        downstream noise draws (and therefore the study results) are
        unchanged.
        """
        internet = self._internet
        hosts = sorted(
            {h for pair in pairs for h in pair}
            | {h for pair in intra_pairs for h in pair}
        )
        if not hosts:
            return
        mh = internet.measurement_host_id
        host_row = internet.latency_matrix([mh], hosts)[0]
        self._host_true = {h: float(v) for h, v in zip(hosts, host_row)}
        if pairs:
            values = internet.pair_latencies(pairs)
            self._pair_true = {
                pair: float(v) for pair, v in zip(pairs, values)
            }

    # -- entry point -------------------------------------------------------------

    def run(self) -> DnsStudyResult:
        """Execute the full pipeline."""
        cfg = self._config
        result = DnsStudyResult()
        traces = self._trace_all()
        result.servers_traced = len(traces)
        clusters = self._cluster_by_pop(traces)
        result.clusters_found = len(clusters)
        pairs = self._sample_pairs(clusters)
        intra_pairs = self._intra_domain_pairs(traces)
        if cfg.batch_true_latencies:
            self._precompute_true_latencies(pairs, intra_pairs)

        # Inter-domain pairs within clusters (Figs 3, 4, and 5's two
        # inter-domain curves).
        for a, b in pairs:
            measurement = self._predict_pair(a, b, traces[a], traces[b], result)
            if measurement is None or measurement.same_domain:
                continue
            result.measurements.append(measurement)
            result.inter_domain_predicted_10.append(measurement.predicted_ms)
            if measurement.measured_ms is not None:
                result.inter_domain_measured_10.append(measurement.measured_ms)

        # Intra-domain pairs (Fig 5's two intra-domain curves; King is
        # unusable here so the predicted latency stands in, as in the paper).
        for a, b in intra_pairs:
            measurement = self._predict_pair(a, b, traces[a], traces[b], result)
            if measurement is None:
                continue
            hops = max(measurement.hops_a, measurement.hops_b)
            if hops <= cfg.intra_domain_strict_hops:
                result.intra_domain_predicted_5.append(measurement.predicted_ms)
            result.intra_domain_predicted_10.append(measurement.predicted_ms)
        return result
