"""Membership lifecycle walkthrough: join/leave/churn on live algorithms.

The paper evaluates nearest-peer schemes over frozen member sets; this
example drives the dynamic-membership API the repository adds on top:

1. build a scheme, admit a batch of arrivals with :meth:`join`, retire a
   batch with :meth:`leave`, and read the per-event maintenance bill —
   incremental schemes pay per event, rebuild schemes pay the whole
   reconstruction (exactly as their declared ``maintenance_policy`` says);
2. run the harness's ``churn`` protocol end to end on the registered
   ``steady-churn`` scenario and compare schemes under the identical
   world, event stream and query stream — accuracy scored against the
   membership alive at each query, maintenance probes on the bill next to
   query probes;
3. sweep the maintenance *scheduling disciplines* (eager / coalesce /
   lazy) on the high-event-rate ``churn-lazy-index`` scenario — deferring
   and batching index maintenance cuts a rebuild scheme's bill by the
   coalescing window;
4. run long-running *service mode*: one built algorithm carried warm
   through steady -> surge -> drain phases, one ``TrialRecord`` per phase.

Run:  python examples/churn_lifecycle.py
"""

import numpy as np

from repro.algorithms import (
    BeaconSearch,
    KargerRuhlSearch,
    MeridianSearch,
    RandomProbeSearch,
)
from repro.harness import QueryEngine, SamplingSpec, get_scenario
from repro.latency.builder import build_clustered_oracle
from repro.topology.clustered import ClusteredConfig


def demonstrate_join_leave() -> None:
    print("=" * 64)
    print("1. The lifecycle API: join / leave with honest maintenance cost")
    print("=" * 64)
    world = build_clustered_oracle(
        ClusteredConfig(n_clusters=6, end_networks_per_cluster=20, delta=0.2),
        seed=7,
    )
    n = world.topology.n_nodes
    initial = np.arange(0, int(0.6 * n))
    arrivals = np.arange(int(0.6 * n), int(0.8 * n))
    target = n - 1  # never a member

    for algorithm in (MeridianSearch(), BeaconSearch(), KargerRuhlSearch(),
                      RandomProbeSearch()):
        algorithm.build(world.oracle, initial, seed=7)
        join_cost = algorithm.join(arrivals, seed=11)
        leave_cost = algorithm.leave(initial[: initial.size // 4], seed=13)
        result = algorithm.query(target, seed=5)
        print(
            f"{algorithm.name:14s} [{algorithm.maintenance_policy:11s}] "
            f"join({arrivals.size})={join_cost:7d} probes   "
            f"leave({initial.size // 4})={leave_cost:7d} probes   "
            f"next query carries maintenance_probes={result.maintenance_probes}"
        )
    print(
        "=> incremental schemes splice the index per event; rebuild schemes\n"
        "   (karger-ruhl, tapestry) bill the full |M|^2 reconstruction.\n"
    )


def demonstrate_churn_protocol() -> None:
    print("=" * 64)
    print("2. The churn protocol: steady-state membership flux")
    print("=" * 64)
    scenario = get_scenario("steady-churn")
    print(
        f"scenario '{scenario.name}': {scenario.churn.arrival_rate} joins "
        f"and {scenario.churn.departure_rate} leaves expected per query, "
        f"mean session {scenario.churn.session_length} queries, "
        f"{scenario.churn.warmup_steps} warmup steps"
    )
    records = QueryEngine().compare(
        scenario,
        [MeridianSearch, BeaconSearch, lambda: RandomProbeSearch(budget=32)],
    )
    print(f"{'scheme':14s} {'P(exact)':>9s} {'P(cluster)':>11s} "
          f"{'probes/q':>9s} {'maint/q':>9s} {'members~':>9s}")
    for record in records:
        print(
            f"{record.scheme:14s} {record.exact_rate:9.2f} "
            f"{record.cluster_rate:11.2f} "
            f"{record.mean_probes_per_query:9.1f} "
            f"{record.mean_maintenance_probes_per_query:9.1f} "
            f"{record.mean_membership_size:9.0f}"
        )
    print(
        "=> every scheme faced the same arrivals, departures and targets\n"
        "   (common random numbers); correctness is judged against the\n"
        "   members alive at each query, not the build-time set."
    )


def demonstrate_maintenance_disciplines() -> None:
    print("=" * 64)
    print("3. Maintenance scheduling: eager vs coalesce-8 vs lazy")
    print("=" * 64)
    scenario = get_scenario("churn-lazy-index").with_(
        topology=ClusteredConfig(n_clusters=4, end_networks_per_cluster=8, delta=0.2),
        sampling=SamplingSpec(n_targets=10),
        n_queries=25,
    )
    print(
        f"scenario '{scenario.name}': "
        f"{scenario.churn.events_per_query} event steps per query — "
        "the sparse-query regime deferred maintenance is built for"
    )
    for discipline in ("eager", "coalesce:8", "lazy"):
        record = QueryEngine().run_trial(
            scenario, lambda: KargerRuhlSearch(maintenance=discipline), 7
        )
        print(
            f"karger-ruhl [{discipline:10s}] "
            f"maint/event={record.maintenance_probes_per_event:8.1f}  "
            f"total={record.total_maintenance_probes:8d}  "
            f"P(exact)={record.exact_rate:.2f}"
        )
    print(
        "=> the member set updates on every event, but the |M|^2 re-index\n"
        "   fires once per window (coalesce) or once per query (lazy) —\n"
        "   the deferred probes are billed when the flush runs.\n"
    )


def demonstrate_service_mode() -> None:
    print("=" * 64)
    print("4. Service mode: one warm algorithm across operating regimes")
    print("=" * 64)
    scenario = get_scenario("service-mode-restarts").with_(
        topology=ClusteredConfig(n_clusters=4, end_networks_per_cluster=8, delta=0.2),
        sampling=SamplingSpec(n_targets=10),
    )
    result = QueryEngine().run_scenario(scenario, BeaconSearch)
    print(f"{'phase':8s} {'P(exact)':>9s} {'maint/q':>9s} {'members~':>9s}")
    for record in result.records:
        print(
            f"{record.phase:8s} {record.exact_rate:9.2f} "
            f"{record.mean_maintenance_probes_per_query:9.1f} "
            f"{record.mean_membership_size:9.0f}"
        )
    print(
        "=> the index, standby pool, session timers and epoch log all\n"
        "   survive the phase boundaries (warm restarts, no rebuild);\n"
        "   each phase is scored and billed as its own TrialRecord."
    )


if __name__ == "__main__":
    demonstrate_join_leave()
    demonstrate_churn_protocol()
    demonstrate_maintenance_disciplines()
    demonstrate_service_mode()
