"""Matchmaking for a latency-sensitive P2P game.

The paper's motivating example: "In first person shooter games ... an
increase of latency from 20 to 40 milliseconds noticeably degrades
user-perceived performance", and many P2P games "only work with the high
bandwidths and low latencies seen over LANs".

Scenario: gamers come online one by one and need an opponent.  We compare
two matchmakers over the same synthetic Internet:

* **latency-only** — Meridian over measured RTTs (the state of the art the
  paper critiques);
* **hint-assisted** — the library's NearestPeerFinder cascade (multicast +
  registry + UCL + prefix with a Meridian fallback).

Reported: how often each matchmaker produces a LAN-grade (<1 ms) and a
playable (<20 ms) match, plus the opportunity cost versus ground truth.

Run:  python examples/gaming_matchmaking.py
"""

import numpy as np

from repro import NearestPeerFinder, SyntheticInternet
from repro.algorithms import MeridianSearch
from repro.core.opportunity import opportunity_cost
from repro.topology.internet import InternetConfig

LAN_GRADE_MS = 1.0
PLAYABLE_MS = 20.0


def build_world() -> tuple[SyntheticInternet, list[int], list[int]]:
    internet = SyntheticInternet.generate(
        InternetConfig(
            n_isps=4,
            pops_per_isp_low=3,
            pops_per_isp_high=5,
            en_per_pop_low=12,
            en_per_pop_high=48,
            mean_peers_per_campus_en=2.2,
        ),
        seed=2008,
    )
    rng = np.random.default_rng(2008)
    gamers = np.array(internet.peer_ids)
    arrivals = rng.choice(gamers, size=50, replace=False)
    arrival_set = set(int(a) for a in arrivals)
    lobby = [int(g) for g in gamers if int(g) not in arrival_set]
    return internet, lobby, [int(a) for a in arrivals]


def match_quality(internet, pairs):
    latencies = [internet.route(a, b).latency_ms for a, b in pairs if b is not None]
    lan = np.mean([lat <= LAN_GRADE_MS for lat in latencies])
    playable = np.mean([lat <= PLAYABLE_MS for lat in latencies])
    return latencies, lan, playable


def main() -> None:
    internet, lobby, arrivals = build_world()
    print(f"world: {internet.describe()}")
    print(f"lobby of {len(lobby)} gamers; {len(arrivals)} arrivals to match\n")

    # Ground truth for the opportunity-cost accounting.
    def true_nearest(target):
        return min(
            (internet.route(target, other).latency_ms for other in lobby),
        )

    truths = [true_nearest(a) for a in arrivals]

    # Matchmaker A: latency-only Meridian.
    meridian = MeridianSearch()
    meridian.build(internet, np.array(lobby), seed=1)
    meridian_pairs = [
        (a, meridian.query(a, seed=a).found) for a in arrivals
    ]
    m_lat, m_lan, m_play = match_quality(internet, meridian_pairs)

    # Matchmaker B: the full hint cascade.
    finder = NearestPeerFinder(internet, seed=1)
    finder.join_all(lobby)
    cascade_pairs = []
    stages = {}
    for a in arrivals:
        result = finder.find(a)
        cascade_pairs.append((a, result.found))
        stages[result.stage] = stages.get(result.stage, 0) + 1
    c_lat, c_lan, c_play = match_quality(internet, cascade_pairs)

    print(f"{'matchmaker':24s} {'LAN-grade':>10s} {'playable':>10s} {'median ms':>10s}")
    print(
        f"{'meridian (latency-only)':24s} {m_lan:>10.0%} {m_play:>10.0%} "
        f"{np.median(m_lat):>10.2f}"
    )
    print(
        f"{'hint cascade':24s} {c_lan:>10.0%} {c_play:>10.0%} "
        f"{np.median(c_lat):>10.2f}"
    )
    print(f"\ncascade stages used: {stages}")

    cost_m = opportunity_cost(m_lat, truths)
    cost_c = opportunity_cost(c_lat, truths)
    print(
        f"\nopportunity cost (found/true latency, p90): "
        f"meridian {cost_m.p90_latency_ratio:.0f}x, "
        f"cascade {cost_c.p90_latency_ratio:.0f}x; "
        f"exact-match rate {cost_m.exact_rate:.0%} vs {cost_c.exact_rate:.0%}"
    )
    print(
        "=> whenever a LAN-mate exists, the latency-only matchmaker misses "
        "it by orders of magnitude; topology hints recover it."
    )


if __name__ == "__main__":
    main()
