"""Re-run the paper's Section 3 measurement study end to end.

Executes both pipelines against a fresh synthetic Internet and prints the
figures they feed (Figs 3-7), exactly as the experiment drivers do — this
is the full methodology: rockettrace PoP mapping, King pair measurements,
TCP-ping clustering from the Table 1 vantage points, and the 1.5x pruning.

Run:  python examples/measurement_study.py
"""

from repro.experiments import (
    fig3_prediction_cdf,
    fig4_prediction_bins,
    fig5_intra_inter,
    fig6_cluster_sizes,
    fig7_intra_cluster,
    table1_vantage,
)
from repro.experiments.config import ExperimentScale


def main() -> None:
    scale = ExperimentScale(seed=77)
    for module in (
        table1_vantage,
        fig3_prediction_cdf,
        fig4_prediction_bins,
        fig5_intra_inter,
        fig6_cluster_sizes,
        fig7_intra_cluster,
    ):
        result = module.run(scale)
        print(result.render())
        holds = all(check.evaluate() for check in result.shape_checks())
        print(f"[shape checks: {'all hold' if holds else 'MISMATCH'}]\n")


if __name__ == "__main__":
    main()
