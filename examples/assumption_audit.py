"""Audit a latency dataset for nearest-peer-algorithm viability.

The library's diagnostic API in one script: given a latency matrix, check
the geometric assumptions the nearest-peer literature relies on
(Section 2.2 of the paper) and detect clustering-condition clusters.  A
deployment could run this on its own RTT measurements to decide whether
latency-only peer selection will work or topology hints are required.

Two datasets are audited side by side: a benign uniform 2-D world and a
paper-style clustered world.

Run:  python examples/assumption_audit.py
"""

import numpy as np

from repro import ClusteredConfig, build_clustered_oracle, detect_clusters
from repro.core.assumptions import (
    doubling_constant,
    growth_ratios,
    intrinsic_dimension,
)
from repro.core.clustering import condition_summary
from repro.core.lowerbound import expected_probes_without_replacement


def uniform_world(n=300, seed=0):
    rng = np.random.default_rng(seed)
    points = rng.uniform(0, 60, size=(n, 2))
    diff = points[:, None, :] - points[None, :, :]
    matrix = np.sqrt((diff**2).sum(axis=2))
    np.fill_diagonal(matrix, 0.0)
    return matrix


def audit(name: str, matrix: np.ndarray) -> None:
    print(f"--- {name} ({matrix.shape[0]} peers) ---")
    ratios = growth_ratios(matrix, [5.0], sample_size=150, seed=1)[5.0]
    if ratios.size:
        print(
            f"growth ratio |B(10ms)|/|B(5ms)|: median "
            f"{np.median(ratios):.1f}, max {ratios.max():.1f} "
            "(growth-constrained algorithms want this small)"
        )
    constant = doubling_constant(matrix, radius_ms=12.0, sample_size=15, seed=1)
    print(f"doubling constant at 12 ms: {constant:.0f} (Meridian wants this small)")
    dimension = intrinsic_dimension(matrix, 3.0, 12.0, seed=1)
    print(
        f"intrinsic dimension at the hub scale: {dimension:.1f} "
        "(coordinate systems want <= ~5)"
    )
    reports = detect_clusters(matrix)
    summary = condition_summary(reports)
    print(
        f"clustering condition: {summary['clusters_satisfying']:.0f} of "
        f"{summary['clusters']:.0f} clusters affected; "
        f"{summary['peers_affected_fraction']:.0%} of peers"
    )
    worst = max(reports, key=lambda r: r.n_end_networks)
    print(
        f"largest cluster: {worst.n_end_networks} end-networks -> expected "
        f"~{expected_probes_without_replacement(max(worst.n_end_networks, 1)):.0f} "
        "brute-force probes to find a same-network peer\n"
    )


def main() -> None:
    audit("uniform 2-D latency space", uniform_world())
    world = build_clustered_oracle(
        ClusteredConfig(n_clusters=8, end_networks_per_cluster=40, delta=0.2),
        seed=3,
    )
    audit("clustered last-hop world (paper Section 4)", world.matrix.values)
    print(
        "verdict: the uniform world is safe for latency-only algorithms; "
        "the clustered world needs the paper's Section 5 mechanisms."
    )


if __name__ == "__main__":
    main()
