"""Bandwidth locality in a file-sharing swarm.

The paper: "among applications like P2P streaming and file-sharing,
significant savings in bandwidth costs are achieved if bulk data
transmission happens between peers in the same network, rather than across
the network boundary."

Scenario: a swarm distributes a file; every downloader picks
``TRANSFERS_PER_PEER`` upload sources.  We compare source selection by
(1) random choice (vanilla BitTorrent-ish), (2) latency-only Meridian,
(3) the UCL mechanism, and report how much traffic stays inside the
end-network / the ISP, plus a throughput proxy (TCP throughput ~ 1/RTT).

Run:  python examples/swarm_locality.py
"""

import numpy as np

from repro import SyntheticInternet
from repro.algorithms import MeridianSearch
from repro.mechanisms.ucl import UclMap, compute_ucl
from repro.topology.internet import InternetConfig

TRANSFERS_PER_PEER = 1


def classify(internet, a, b):
    if internet.host(a).en_id == internet.host(b).en_id:
        return "same end-network"
    if internet.host(a).pop_id == internet.host(b).pop_id:
        return "same PoP"
    if internet.host(a).isp_id == internet.host(b).isp_id:
        return "same ISP"
    return "cross ISP"


def main() -> None:
    internet = SyntheticInternet.generate(
        InternetConfig(
            n_isps=4,
            pops_per_isp_low=3,
            pops_per_isp_high=5,
            en_per_pop_low=14,
            en_per_pop_high=50,
            mean_peers_per_campus_en=2.5,
        ),
        seed=4242,
    )
    rng = np.random.default_rng(4242)
    swarm = [int(p) for p in rng.choice(internet.peer_ids, size=320, replace=False)]
    downloaders = swarm[:60]
    seeders = swarm[60:]
    print(f"world: {internet.describe()}")
    print(f"swarm: {len(seeders)} seeders, {len(downloaders)} downloaders\n")

    # Strategy 1: random source selection.
    random_choice = {d: int(rng.choice(seeders)) for d in downloaders}

    # Strategy 2: Meridian closest-seeder.
    meridian = MeridianSearch()
    meridian.build(internet, np.array(seeders), seed=9)
    meridian_choice = {
        d: meridian.query(d, seed=d).found for d in downloaders
    }

    # Strategy 3: the UCL map, falling back to Meridian's pick.
    ucl_map = UclMap(internet)
    for seeder in seeders:
        ucl_map.insert_peer(seeder, compute_ucl(internet, seeder, seed=seeder))
    ucl_choice = {}
    for d in downloaders:
        found, _latency, _stats = ucl_map.find_nearest(
            d, compute_ucl(internet, d, seed=d), max_estimate_ms=15.0, seed=d
        )
        ucl_choice[d] = found if found is not None else meridian_choice[d]

    strategies = {
        "random": random_choice,
        "meridian": meridian_choice,
        "UCL (+fallback)": ucl_choice,
    }
    scopes = ["same end-network", "same PoP", "same ISP", "cross ISP"]
    header = f"{'strategy':16s} " + " ".join(f"{s:>16s}" for s in scopes)
    print(header + f" {'throughput':>11s}")
    for name, choice in strategies.items():
        counts = {s: 0 for s in scopes}
        throughput = []
        for d, s in choice.items():
            counts[classify(internet, d, s)] += 1
            rtt = max(internet.route(d, s).latency_ms, 0.05)
            throughput.append(1.0 / rtt)  # TCP throughput ~ 1/RTT proxy
        fractions = " ".join(
            f"{counts[s] / len(choice):>16.0%}" for s in scopes
        )
        print(f"{name:16s} {fractions} {np.median(throughput):>10.2f}x")
    print(
        "\n(throughput proxy: 1/RTT, median across transfers; "
        "higher is better)"
    )
    print(
        "=> UCL keeps transfers inside the network boundary far more often, "
        "which is the paper's bandwidth-cost argument."
    )


if __name__ == "__main__":
    main()
