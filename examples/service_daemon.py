"""Simulated-time service daemon walkthrough: latency, not probe counts.

The paper's benchmarks (and this repository's, until now) score
nearest-peer schemes by how many latency probes a query spends.  A
deployed service cares about something subtly different: how long an
answer *takes* while queries pile up, membership churns and the overlay
repairs itself.  This example drives the ``daemon`` protocol:

1. run the registered ``daemon-steady`` scenario head-to-head through
   :meth:`QueryEngine.compare` — every scheme faces the identical Poisson
   arrivals, targets, entry nodes and membership events — and rank the
   schemes by median time-to-answer (note how the ranking *differs* from
   the probes/query ranking: many probes in few parallel rounds beat few
   probes dribbled over many sequential hops);
2. push the same schemes through ``daemon-flash-crowd`` — a query burst
   onto a small population with per-node concurrency 1 — and watch FIFO
   queueing delay, not probing, dominate the p99;
3. peek at the daemon's own dials: queue depth, in-flight probes, the
   continuous Meridian ring-repair pass driven on the event loop.

Run:  python examples/service_daemon.py
"""

from repro.algorithms import BeaconSearch, MeridianSearch, RandomProbeSearch
from repro.analysis.compare import format_trial_records, rank_by_time_to_answer
from repro.harness import QueryEngine, get_scenario

SCHEMES = [
    lambda: RandomProbeSearch(budget=32),
    BeaconSearch,
    MeridianSearch,
]


def run_scenario(name: str, n_queries: int = 120) -> None:
    print("=" * 64)
    print(f"scenario: {name}")
    print("=" * 64)
    scenario = get_scenario(name).with_(n_queries=n_queries)
    records = QueryEngine().compare(scenario, SCHEMES)
    ranked = rank_by_time_to_answer(records)
    print(format_trial_records(ranked))
    print()
    for record in ranked:
        print(
            f"{record.scheme:>13}: "
            f"queue wait mean {record.mean_queue_wait_ms:6.1f} ms  "
            f"depth max {record.queue_depth_max:3d}  "
            f"in-flight max {record.in_flight_probes_max:4d}  "
            f"rounds/q {record.mean_probe_rounds:4.2f}  "
            f"events {record.n_churn_events:3d}  "
            f"repair passes {record.ring_repair_passes}"
        )
    fastest, slowest = ranked[0], ranked[-1]
    print(
        f"\n{fastest.scheme} answers {slowest.tta_median_ms / fastest.tta_median_ms:.1f}x "
        f"faster (median) than {slowest.scheme} under this load, "
        f"despite the probe bill ranking telling a different story.\n"
    )


def main() -> None:
    run_scenario("daemon-steady")
    run_scenario("daemon-flash-crowd")


if __name__ == "__main__":
    main()
