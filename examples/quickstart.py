"""Quickstart: see the clustering condition break Meridian, then fix it.

This walks the library's core loop end to end:

1. build a Section 4 clustered world and *detect* the clustering condition
   from its latency matrix alone;
2. watch Meridian find the right cluster but miss the same-end-network peer,
   exactly as the paper predicts, and compare the probe bill with the
   analytic lower bound;
3. switch to the router-level synthetic Internet and run the
   :class:`~repro.core.finder.NearestPeerFinder` cascade (registry + UCL +
   prefix), which finds the same-network peer immediately.

Run:  python examples/quickstart.py
"""

from repro import (
    ClusteredConfig,
    NearestPeerFinder,
    QueryEngine,
    SamplingSpec,
    SyntheticInternet,
    build_clustered_oracle,
    detect_clusters,
)
from repro.algorithms import MeridianSearch
from repro.core.lowerbound import phase_transition_probes


def demonstrate_meridian_failure() -> None:
    print("=" * 64)
    print("1. Meridian vs the clustering condition (paper Section 4)")
    print("=" * 64)
    world = build_clustered_oracle(
        ClusteredConfig(n_clusters=10, end_networks_per_cluster=100, delta=0.2),
        seed=7,
    )
    print(f"world: {world.topology.describe()}")

    reports = detect_clusters(world.matrix.values)
    affected = [r for r in reports if r.satisfies_condition]
    print(
        f"clustering-condition detector: {len(affected)} of {len(reports)} "
        "clusters satisfy the condition"
    )

    # The unified harness runs the query workload: sample 60 targets, fire
    # 400 Meridian queries, score exact/cluster hits with one matrix slice.
    record = QueryEngine().run_world_trial(
        world,
        MeridianSearch(),
        sampling=SamplingSpec(n_targets=60),
        n_queries=400,
        seed=7,
    )
    print(f"P(correct cluster)      = {record.cluster_rate:.2f}")
    print(f"P(correct closest peer) = {record.exact_rate:.2f}")
    print(f"probes per query        = {record.mean_probes_per_query:.1f}")
    bound = phase_transition_probes(100, population=world.topology.n_nodes)
    print(
        f"analytic probes needed for reliable discovery ~ {bound:.0f} "
        "(descent + in-cluster brute force)"
    )
    print(
        "=> Meridian reaches the right cluster almost always, but the "
        "same-end-network peer only rarely.\n"
    )


def demonstrate_the_fix() -> None:
    print("=" * 64)
    print("2. The Section 5 fix: topology hints (UCL / prefix / registry)")
    print("=" * 64)
    internet = SyntheticInternet.generate(seed=7)
    print(f"internet: {internet.describe()}")

    # Find an end-network with at least two peers: one joins the system
    # early, the other will look for it.
    by_en: dict[int, list[int]] = {}
    for peer in internet.peer_ids:
        by_en.setdefault(internet.host(peer).en_id, []).append(peer)
    mate, joiner = next(v[:2] for v in by_en.values() if len(v) >= 2)

    finder = NearestPeerFinder(internet, seed=7)
    members = [p for p in internet.peer_ids[:400] if p != joiner]
    if mate not in members:
        members.append(mate)
    finder.join_all(members)

    result = finder.find(joiner)
    truth, truth_latency = finder.true_nearest(joiner)
    print(f"joining peer {joiner}: looking for its nearest peer")
    print(
        f"  found peer {result.found} at {result.latency_ms:.3f} ms "
        f"via stage '{result.stage}' ({result.probes} probes)"
    )
    print(f"  ground truth: peer {truth} at {truth_latency:.3f} ms")
    verdict = "exact" if result.found == truth else "approximate"
    print(f"  => {verdict} nearest-peer discovery\n")


if __name__ == "__main__":
    demonstrate_meridian_failure()
    demonstrate_the_fix()
