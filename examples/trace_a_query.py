"""Trace one query through a lossy daemon run, end to end.

The observability layer (:mod:`repro.obs`) records per-query spans on
*simulated* time — queue wait, each probe round with its fault tags,
whole-plan retry gaps — without perturbing the run it observes: tracing
consumes zero rng draws, so answers, timings and bills are bit-identical
with it on or off.  This example:

1. runs one daemon trial under packet loss, NAT relays and a regional
   outage with ``DaemonSpec.trace`` enabled;
2. dumps the span stream to a JSONL trace file
   (the ``repro-trace`` console script renders the same file);
3. renders the slowest query's timeline — an ASCII critical-path view
   whose phase durations tile the query's time to answer exactly — and
   the run's phase-breakdown table.

Run:  python examples/trace_a_query.py
"""

import tempfile
from pathlib import Path

from repro.algorithms import KargerRuhlSearch
from repro.harness import DaemonSpec, FaultSpec, QueryEngine, SamplingSpec
from repro.harness.scenario import TraceSpec
from repro.latency.builder import build_clustered_oracle
from repro.obs.cli import render_summary, render_timeline, slowest_query
from repro.obs.export import dump_trace_jsonl, load_trace_jsonl, validate_trace
from repro.topology.clustered import ClusteredConfig

WORLD = ClusteredConfig(n_clusters=6, end_networks_per_cluster=20, delta=0.2)

#: A genuinely broken network: 10% loss everywhere, 30% of hosts behind
#: NAT relays, and cluster 0 dark for the first 1.5 simulated seconds —
#: enough to exhaust retransmit ladders and force whole-plan retries.
SPEC = DaemonSpec(
    mean_interarrival_ms=40.0,
    per_node_concurrency=2,
    initial_fraction=0.7,
    min_members=32,
    mean_event_interval_ms=400.0,
    arrival_rate=0.3,
    departure_rate=0.3,
    faults=FaultSpec(
        base_loss_rate=0.1,
        nat_fraction=0.3,
        outages=((0.0, 1500.0, (0,)),),
        probe_timeout_ms=100.0,
        max_retransmits=2,
        query_retry_ms=100.0,
        deadline_ms=800.0,
    ),
    trace=TraceSpec(),
)


def main() -> None:
    world = build_clustered_oracle(WORLD, seed=99)
    record = QueryEngine().run_daemon_trial(
        world,
        KargerRuhlSearch(samples_per_scale=4, max_rounds=12),
        SPEC,
        sampling=SamplingSpec(n_targets=30),
        n_queries=30,
        seed=5,
        max_sim_ms=300_000.0,
    )

    path = Path(tempfile.mkdtemp()) / "daemon-lossy.trace.jsonl"
    dump_trace_jsonl(
        path,
        list(record.spans),
        {"scheme": record.scheme, "n_queries": record.n_queries},
    )
    problems = validate_trace(path)
    print(f"trace written to {path} ({'OK' if not problems else problems})")
    print()

    dump = load_trace_jsonl(path)[0]
    query = slowest_query(dump)
    print(render_timeline(dump, query=query))
    print()
    print(render_summary([dump]))
    print()
    print(
        f"run totals: {record.total_query_retries} plan retries, "
        f"{record.total_probe_retransmits} retransmits, "
        f"{record.total_relayed_probes} relayed probes, "
        f"availability {record.availability:.2f}"
    )


if __name__ == "__main__":
    main()
